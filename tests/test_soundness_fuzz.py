"""Soundness fuzzing: random structured programs, WCET >= simulation.

Hypothesis generates random (but always-terminating) mini-C programs out
of counted loops, branches on data, global-array traffic and helper
calls; for each program and each memory system the analysed WCET bound
must dominate the simulated cycle count.  This hunts for disagreements
between the simulator's and the analyser's view of the machine — the
class of bug that silently breaks the paper's entire methodology.
"""

from hypothesis import given, settings, strategies as st

from repro.link import link
from repro.memory import CacheConfig, SystemConfig
from repro.minic import compile_source
from repro.sim import simulate
from repro.wcet import analyze_wcet


@st.composite
def statement(draw, depth, names):
    kind = draw(st.sampled_from(
        ["assign", "array", "if", "loop"] if depth < 2
        else ["assign", "array"]))
    if kind == "assign":
        target = draw(st.sampled_from(names))
        source = draw(st.sampled_from(names))
        op = draw(st.sampled_from(["+", "-", "*", "&", "|", "^"]))
        constant = draw(st.integers(0, 200))
        return f"{target} = {target} {op} ({source} + {constant});"
    if kind == "array":
        index = draw(st.integers(0, 15))
        target = draw(st.sampled_from(names))
        if draw(st.booleans()):
            return f"buffer[{index}] = {target};"
        return f"{target} = {target} + buffer[({target} & 15)];"
    if kind == "if":
        condition_var = draw(st.sampled_from(names))
        threshold = draw(st.integers(0, 100))
        then = draw(statement(depth + 1, names))
        other = draw(statement(depth + 1, names))
        return (f"if (({condition_var} & 255) < {threshold}) "
                f"{{ {then} }} else {{ {other} }}")
    # counted loop (auto-bounded by the compiler); one loop variable per
    # nesting depth so inner loops never clobber an outer counter.
    count = draw(st.integers(1, 6))
    body = draw(statement(depth + 1, names))
    return (f"for (loop_i{depth} = 0; loop_i{depth} < {count}; "
            f"loop_i{depth}++) {{ {body} }}")


@st.composite
def random_program(draw):
    names = ["va", "vb", "vc"]
    seeds = [draw(st.integers(0, 10000)) for _ in names]
    body = "\n    ".join(
        draw(statement(0, names)) for _ in range(draw(st.integers(2, 6))))
    decls = "\n    ".join(
        f"int {name} = {seed};" for name, seed in zip(names, seeds))
    return f"""
int buffer[16];
int main(void) {{
    int loop_i0;
    int loop_i1;
    int loop_i2;
    {decls}
    {body}
    return (va + vb + vc) & 255;
}}
"""


CONFIGS = [
    SystemConfig.uncached(),
    SystemConfig.cached(CacheConfig(size=64)),
    SystemConfig.cached(CacheConfig(size=256, assoc=2)),
]


@settings(max_examples=30, deadline=None)
@given(random_program())
def test_wcet_dominates_simulation(source):
    image = link(compile_source(source).program)
    results = []
    for config in CONFIGS:
        sim = simulate(image, config)
        wcet = analyze_wcet(image, config)
        assert wcet.wcet >= sim.cycles, (config.name, source)
        results.append(sim)
    # Memory systems must never change computed values.
    for sim in results[1:]:
        assert sim.exit_code == results[0].exit_code


@settings(max_examples=15, deadline=None)
@given(random_program(), st.integers(64, 512))
def test_spm_placement_sound_and_value_preserving(source, spm_size):
    compiled = compile_source(source)
    baseline = link(compiled.program)
    reference = simulate(baseline, SystemConfig.uncached())
    # Place everything that fits, greedily by size.
    objects = sorted(compiled.program.memory_objects(), key=lambda o: o[2])
    chosen = []
    used = 0
    for name, _kind, size in objects:
        aligned = (size + 3) & ~3
        if used + aligned <= spm_size:
            chosen.append(name)
            used += aligned
    image = link(compiled.program, spm_size=spm_size, spm_objects=chosen)
    config = SystemConfig.scratchpad(spm_size)
    sim = simulate(image, config)
    wcet = analyze_wcet(image, config)
    assert sim.exit_code == reference.exit_code
    assert wcet.wcet >= sim.cycles
    assert sim.cycles <= reference.cycles  # SPM can only help
