"""Soundness fuzzing: random structured programs, WCET >= simulation.

Hypothesis generates random (but always-terminating) mini-C programs —
the strategies live in :mod:`repro.gen.strategies`, shared with the
rest of the fuzzing stack — and for each program and each memory system
the analysed WCET bound must dominate the simulated cycle count.  This
hunts for disagreements between the simulator's and the analyser's view
of the machine — the class of bug that silently breaks the paper's
entire methodology.

This is the shrinking tier: small example budgets, minimal
counterexamples.  The bulk sweep over thousands of seeded programs is
the ``fuzz``-marked tier (``tests/test_fuzz_generated.py``).
"""

from hypothesis import given, settings, strategies as st

from repro.gen.strategies import random_program
from repro.link import link
from repro.memory import CacheConfig, SystemConfig
from repro.minic import compile_source
from repro.sim import simulate
from repro.wcet import analyze_wcet


CONFIGS = [
    SystemConfig.uncached(),
    SystemConfig.cached(CacheConfig(size=64)),
    SystemConfig.cached(CacheConfig(size=256, assoc=2)),
]


@settings(max_examples=50, deadline=None)
@given(random_program())
def test_wcet_dominates_simulation(source):
    image = link(compile_source(source).program)
    results = []
    for config in CONFIGS:
        sim = simulate(image, config)
        wcet = analyze_wcet(image, config)
        assert wcet.wcet >= sim.cycles, (config.name, source)
        results.append(sim)
    # Memory systems must never change computed values.
    for sim in results[1:]:
        assert sim.exit_code == results[0].exit_code


@settings(max_examples=25, deadline=None)
@given(random_program(), st.integers(64, 512))
def test_spm_placement_sound_and_value_preserving(source, spm_size):
    compiled = compile_source(source)
    baseline = link(compiled.program)
    reference = simulate(baseline, SystemConfig.uncached())
    # Place everything that fits, greedily by size.
    objects = sorted(compiled.program.memory_objects(), key=lambda o: o[2])
    chosen = []
    used = 0
    for name, _kind, size in objects:
        aligned = (size + 3) & ~3
        if used + aligned <= spm_size:
            chosen.append(name)
            used += aligned
    image = link(compiled.program, spm_size=spm_size, spm_objects=chosen)
    config = SystemConfig.scratchpad(spm_size)
    sim = simulate(image, config)
    wcet = analyze_wcet(image, config)
    assert sim.exit_code == reference.exit_code
    assert wcet.wcet >= sim.cycles
    assert sim.cycles <= reference.cycles  # SPM can only help
