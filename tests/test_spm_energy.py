"""Scratchpad allocation (knapsack, energy and WCET-driven) + energy model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.energy import EnergyModel, cache_access_energy_nj, \
    program_energy_nj
from repro.link import link
from repro.memory import CacheConfig, SystemConfig
from repro.minic import compile_source
from repro.sim import simulate
from repro.sim.profile import build_profile
from repro.spm import (
    Item,
    allocate_energy_optimal,
    allocate_wcet_driven,
    build_items,
    solve_knapsack_dp,
    solve_knapsack_ilp,
)


class TestKnapsackSolvers:
    def test_simple_choice(self):
        items = [Item("a", 10, 5.0), Item("b", 10, 8.0),
                 Item("c", 15, 9.0)]
        chosen, benefit = solve_knapsack_ilp(items, 20)
        assert chosen == {"a", "b"}
        assert benefit == pytest.approx(13.0)

    def test_zero_benefit_never_chosen(self):
        items = [Item("dead", 4, 0.0), Item("live", 4, 1.0)]
        chosen, _ = solve_knapsack_ilp(items, 100)
        assert chosen == {"live"}

    def test_oversized_item_skipped(self):
        items = [Item("big", 1000, 99.0), Item("small", 4, 1.0)]
        chosen, _ = solve_knapsack_ilp(items, 10)
        assert chosen == {"small"}

    def test_empty(self):
        assert solve_knapsack_ilp([], 100) == (set(), 0.0)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(1, 40), st.floats(0.5, 50.0)),
        min_size=1, max_size=10), st.integers(1, 100))
    def test_ilp_matches_dp(self, raw_items, capacity):
        items = [Item(f"o{i}", size, round(benefit, 3))
                 for i, (size, benefit) in enumerate(raw_items)]
        _chosen_a, benefit_a = solve_knapsack_ilp(items, capacity)
        _chosen_b, benefit_b = solve_knapsack_dp(items, capacity)
        assert benefit_a == pytest.approx(benefit_b, abs=1e-2)


SOURCE = """
int hot_data[32];
int cold_data[256];
int hot(int x) {
    int i; int t = x;
    for (i = 0; i < 32; i++) { t += hot_data[i]; }
    return t;
}
int cold(int x) { return x + cold_data[0]; }
int main(void) {
    int i; int t = 0;
    for (i = 0; i < 50; i++) { t = hot(t); }
    t = cold(t);
    return t & 255;
}
"""


def profiled():
    compiled = compile_source(SOURCE)
    image = link(compiled.program)
    result = simulate(image, SystemConfig.uncached(), profile=True)
    return compiled, image, build_profile(image, result)


class TestEnergyAllocation:
    def test_hot_objects_preferred(self):
        compiled, _image, profile = profiled()
        hot_size = compiled.program.function("hot").size
        allocation = allocate_energy_optimal(
            compiled.program, profile, ((hot_size + 3) & ~3) + 4)
        assert "hot" in allocation.objects
        assert "cold" not in allocation.objects

    def test_capacity_respected(self):
        compiled, _image, profile = profiled()
        for size in (64, 128, 256, 512):
            allocation = allocate_energy_optimal(compiled.program,
                                                 profile, size)
            assert allocation.used_bytes <= size
            # The linker must agree that it fits.
            link(compiled.program, spm_size=size,
                 spm_objects=allocation.objects)

    def test_benefit_monotone_in_capacity(self):
        compiled, _image, profile = profiled()
        benefits = [allocate_energy_optimal(compiled.program, profile,
                                            size).benefit
                    for size in (0, 64, 256, 1024, 4096)]
        assert benefits == sorted(benefits)

    def test_dp_and_ilp_agree_on_program(self):
        compiled, _image, profile = profiled()
        a = allocate_energy_optimal(compiled.program, profile, 512,
                                    method="ilp")
        b = allocate_energy_optimal(compiled.program, profile, 512,
                                    method="dp")
        assert a.benefit == pytest.approx(b.benefit, rel=1e-6)

    def test_zero_size_allocates_nothing(self):
        compiled, _image, profile = profiled()
        allocation = allocate_energy_optimal(compiled.program, profile, 0)
        assert not allocation.objects

    def test_unknown_method(self):
        compiled, _image, profile = profiled()
        with pytest.raises(ValueError):
            allocate_energy_optimal(compiled.program, profile, 64,
                                    method="magic")


class TestWcetDrivenAllocation:
    def test_improves_wcet(self):
        from repro.wcet import analyze_wcet
        compiled = compile_source(SOURCE)
        allocation = allocate_wcet_driven(compiled.program, 1024)
        assert allocation.objects
        baseline = analyze_wcet(link(compiled.program),
                                SystemConfig.uncached())
        placed = analyze_wcet(
            link(compiled.program, spm_size=1024,
                 spm_objects=allocation.objects),
            SystemConfig.scratchpad(1024))
        assert placed.wcet < baseline.wcet

    def test_prefers_critical_path(self):
        # `cold` is called once; `hot` dominates the critical path.
        compiled = compile_source(SOURCE)
        hot_size = compiled.program.function("hot").size
        allocation = allocate_wcet_driven(compiled.program,
                                          ((hot_size + 3) & ~3) + 4)
        assert "hot" in allocation.objects

    def test_zero_capacity(self):
        compiled = compile_source(SOURCE)
        assert not allocate_wcet_driven(compiled.program, 0).objects


class TestEnergyModel:
    def test_spm_cheaper_than_main(self):
        model = EnergyModel()
        for width in (1, 2, 4):
            assert model.spm_benefit_per_access(width) > 0

    def test_object_benefit_scales_with_accesses(self):
        model = EnergyModel()
        assert model.object_benefit("code", 100, 2) == \
            pytest.approx(100 * model.spm_benefit_per_access(2))
        assert model.object_benefit("data", 10, 4) > \
            model.object_benefit("data", 10, 2)

    def test_cache_energy_grows_with_size_and_ways(self):
        small = cache_access_energy_nj(CacheConfig(size=256))
        large = cache_access_energy_nj(CacheConfig(size=8192))
        assert large > small
        two_way = cache_access_energy_nj(CacheConfig(size=256, assoc=2))
        assert two_way > small

    def test_program_energy_drops_with_spm(self):
        compiled, image, profile = profiled()
        result_main = simulate(image, SystemConfig.uncached(),
                               profile=True)
        energy_main = program_energy_nj(image, result_main)

        names = {f.name for f in compiled.program.functions}
        names |= {g.name for g in compiled.program.globals}
        spm_image = link(compiled.program, spm_size=4096,
                         spm_objects=names)
        result_spm = simulate(spm_image, SystemConfig.scratchpad(4096),
                              profile=True)
        energy_spm = program_energy_nj(spm_image, result_spm)
        assert energy_spm < energy_main

    def test_build_items_uses_aligned_sizes(self):
        compiled, _image, profile = profiled()
        for item in build_items(compiled.program, profile):
            assert item.size % 4 == 0
