"""Resilience under injected faults (PR 8).

The invariant every test here circles: **under every injected fault,
the produced artefacts are byte-identical to a fault-free cold run** —
the system degrades (retries, quarantines, recomputes, warns) but is
never *wrong*.  Three layers are exercised:

* :mod:`repro.store` — the checksummed, corruption-quarantining
  artifact store behind both disk cache layers, plus the bounded
  :class:`~repro.store.LRUCache` fronting the in-process layers;
* the fault hooks of :mod:`repro.testing.faults` (env-driven so they
  survive into ``evaluate_points`` worker processes);
* the hardened parallel scheduler in
  :mod:`repro.experiments.common` — per-unit timeout, retry with
  backoff, pool-rebuild recovery, deterministic merge, structured
  :class:`~repro.experiments.common.SweepFailure` reports.
"""

import os
import pickle
import subprocess
import sys
import time

import pytest

from repro.store import (
    STORE_COUNTER_KEYS,
    ArtifactStore,
    LRUCache,
    env_capacity,
    envelope,
    open_envelope,
)
from repro.testing.faults import (
    FaultInjected,
    corrupt_file,
    reset_fault_counters,
    truncate_file,
)

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


@pytest.fixture(autouse=True)
def _no_leftover_faults(monkeypatch):
    """Every test starts (and leaves) with fault injection disarmed."""
    monkeypatch.delenv("REPRO_FAULT_STORE_WRITE", raising=False)
    monkeypatch.delenv("REPRO_FAULT_UNIT", raising=False)
    monkeypatch.delenv("REPRO_FAULT_SERVE", raising=False)
    reset_fault_counters()
    yield
    reset_fault_counters()


# --------------------------------------------------------------------------
# The envelope
# --------------------------------------------------------------------------

class TestEnvelope:
    def test_round_trip(self):
        for payload in (b"", b"x", b"payload " * 1000):
            assert open_envelope(envelope(payload)) == payload

    def test_rejects_foreign_and_short_blobs(self):
        assert open_envelope(b"") is None
        assert open_envelope(b"not a pickle") is None
        assert open_envelope(b"repro-store 9 " + b"0" * 40) is None

    def test_rejects_bit_flip(self):
        blob = bytearray(envelope(b"the payload bytes"))
        blob[-3] ^= 0x01
        assert open_envelope(bytes(blob)) is None

    def test_rejects_truncation(self):
        blob = envelope(b"the payload bytes")
        for cut in (1, len(blob) // 2, len(blob) - 1):
            assert open_envelope(blob[:cut]) is None

    def test_rejects_trailing_garbage(self):
        assert open_envelope(envelope(b"payload") + b"x") is None


# --------------------------------------------------------------------------
# The artifact store
# --------------------------------------------------------------------------

class TestArtifactStore:
    def test_round_trip_and_sharded_layout(self, tmp_path):
        store = ArtifactStore(tmp_path, suffix=".trace.pkl")
        value = {"rows": list(range(100)), "name": "adpcm"}
        assert store.store(("k", 1), value)
        path = store.path_for(("k", 1))
        shard = os.path.basename(os.path.dirname(path))
        assert len(shard) == 2 and set(shard) <= set("0123456789abcdef")
        assert path.endswith(".trace.pkl")
        assert store.load(("k", 1)) == value
        assert store.counters["writes"] == 1
        assert store.counters["hits"] == 1
        assert store.load(("k", 2)) is None
        assert store.counters["misses"] == 1

    def test_bit_flip_quarantined_not_served(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.store("key", [1, 2, 3])
        path = store.path_for("key")
        corrupt_file(path)
        assert store.load("key") is None
        assert store.counters["corrupt"] == 1
        assert not os.path.exists(path)
        assert os.listdir(store.corrupt_dir())  # moved aside, not lost

    def test_truncation_quarantined(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.store("key", list(range(1000)))
        truncate_file(store.path_for("key"))
        assert store.load("key") is None
        assert store.counters["corrupt"] == 1

    def test_valid_envelope_bad_pickle_quarantined(self, tmp_path):
        # Checksum fine, content unusable: corrupt-for-our-purposes.
        store = ArtifactStore(tmp_path)
        path = store.path_for("key")
        assert store.write(path, b"this is not a pickle")
        assert store.load("key") is None
        assert store.counters["corrupt"] == 1
        assert store.counters["hits"] == 0

    def test_stale_tmp_files_reaped(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.store("key", 1)
        shard = os.path.dirname(store.path_for("key"))
        stale = os.path.join(shard, "dead.pkl.tmp999")
        fresh = os.path.join(shard, "live.pkl.tmp888")
        for orphan in (stale, fresh):
            with open(orphan, "wb") as handle:
                handle.write(b"partial")
        old = time.time() - 3600
        os.utime(stale, (old, old))
        assert store.reap_tmp() == 1  # grace period spares the fresh one
        assert not os.path.exists(stale)
        assert os.path.exists(fresh)
        assert store.reap_tmp(max_age=0.0) == 1
        assert store.counters["reaped"] == 2
        # Tmp orphans are never visible as entries.
        assert store.stats()["entries"] == 1

    def test_first_write_reaps_crash_orphans(self, tmp_path):
        orphan = tmp_path / "crashed.pkl.tmp123"
        orphan.write_bytes(b"partial")
        old = time.time() - 3600
        os.utime(orphan, (old, old))
        store = ArtifactStore(tmp_path)
        store.store("key", 1)
        assert not orphan.exists()
        assert store.counters["reaped"] == 1

    def test_gc_evicts_oldest_mtime_first(self, tmp_path):
        store = ArtifactStore(tmp_path)
        blob = b"x" * 100
        for index in range(4):
            store.store(index, blob)
            when = time.time() - (100 - index)  # 0 is oldest
            path = store.path_for(index)
            os.utime(path, (when, when))
        size = os.path.getsize(store.path_for(0))
        evicted = store.gc(max_bytes=2 * size)
        assert evicted == 2
        assert store.load(0) is None and store.load(1) is None
        assert store.load(2) is not None and store.load(3) is not None
        assert store.counters["evictions"] == 2

    def test_write_cap_triggers_gc(self, tmp_path):
        blob = b"x" * 100
        probe = ArtifactStore(tmp_path / "probe")
        probe.store(0, blob)
        size = os.path.getsize(probe.path_for(0))
        store = ArtifactStore(tmp_path / "capped", max_bytes=4 * size)
        for index in range(64):  # auto-gc runs every 64 writes
            store.store(index, blob)
        assert store.stats()["bytes"] <= 4 * size
        assert store.counters["evictions"] >= 60

    def test_verify_quarantines_and_counts(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for index in range(3):
            store.store(index, index)
        corrupt_file(store.path_for(1))
        outcome = store.verify()
        assert outcome == {"checked": 3, "quarantined": 1}
        assert store.verify() == {"checked": 2, "quarantined": 0}
        assert store.stats()["quarantined_files"] == 1

    def test_clear_removes_entries_keeps_quarantine(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for index in range(3):
            store.store(index, index)
        corrupt_file(store.path_for(0))
        assert store.load(0) is None  # quarantined
        assert store.clear() == 2
        assert store.stats()["entries"] == 0
        assert store.stats()["quarantined_files"] == 1

    def test_stats_shape(self, tmp_path):
        store = ArtifactStore(tmp_path)
        stats = store.stats()
        assert stats["entries"] == 0 and stats["bytes"] == 0
        assert stats["degraded"] is False
        assert set(stats["counters"]) == set(STORE_COUNTER_KEYS)


class TestWriteFaults:
    """Injected disk failures: degraded, never wrong."""

    def test_torn_write_detected_and_recomputed(self, tmp_path,
                                                monkeypatch):
        value = list(range(500))
        store = ArtifactStore(tmp_path)
        monkeypatch.setenv("REPRO_FAULT_STORE_WRITE", "torn@1")
        assert store.store("key", value)  # committed... torn
        assert store.load("key") is None  # detected, quarantined
        assert store.counters["corrupt"] == 1
        assert store.store("key", value)  # fault spent: clean rewrite
        assert store.load("key") == value

    @pytest.mark.parametrize("kind", ["enospc", "erofs"])
    def test_disk_failure_degrades_to_memory_only(self, tmp_path,
                                                  monkeypatch, kind):
        store = ArtifactStore(tmp_path)
        monkeypatch.setenv("REPRO_FAULT_STORE_WRITE", f"{kind}@1+")
        with pytest.warns(RuntimeWarning, match="memory-only"):
            for index in range(5):  # store() never raises
                assert store.store(index, index) is False
        # Three consecutive failures degrade; later writes are skipped.
        assert store.degraded
        assert store.counters["write_errors"] == 3
        assert store.counters["write_skips"] == 2
        assert store.stats()["entries"] == 0  # no torn junk left behind

    def test_degraded_store_still_reads(self, tmp_path, monkeypatch):
        store = ArtifactStore(tmp_path)
        store.store("early", "value")
        monkeypatch.setenv("REPRO_FAULT_STORE_WRITE", "enospc@1+")
        with pytest.warns(RuntimeWarning):
            for index in range(3):
                store.store(index, index)
        assert store.degraded
        assert store.load("early") == "value"  # a full disk still serves


# --------------------------------------------------------------------------
# Bounded in-process caches
# --------------------------------------------------------------------------

class TestLRUCache:
    def test_capacity_bound_and_eviction_order(self):
        evicted = []
        cache = LRUCache(capacity=2,
                         on_evict=lambda: evicted.append(1))
        cache["a"] = 1
        cache["b"] = 2
        assert cache.get("a") == 1  # refresh: "b" is now LRU
        cache["c"] = 3
        assert len(cache) == 2
        assert "b" not in cache and "a" in cache and "c" in cache
        assert cache.evictions == 1 and evicted == [1]

    def test_unbounded_by_default(self):
        cache = LRUCache()
        for index in range(1000):
            cache[index] = index
        assert len(cache) == 1000 and cache.evictions == 0

    def test_set_capacity_evicts_immediately(self):
        cache = LRUCache()
        for index in range(10):
            cache[index] = index
        cache.set_capacity(3)
        assert len(cache) == 3 and cache.evictions == 7
        assert 9 in cache and 0 not in cache

    def test_env_capacity_knob(self, monkeypatch):
        assert env_capacity("REPRO_TEST_CAP", 64) == 64
        monkeypatch.setenv("REPRO_TEST_CAP", "8")
        assert env_capacity("REPRO_TEST_CAP", 64) == 8
        monkeypatch.setenv("REPRO_TEST_CAP", "0")
        assert env_capacity("REPRO_TEST_CAP", 64) is None  # unbounded
        monkeypatch.setenv("REPRO_TEST_CAP", "junk")
        assert env_capacity("REPRO_TEST_CAP", 64) == 64


class TestBoundedCacheLayers:
    """The process-wide cache layers respect their capacity knobs."""

    @pytest.fixture
    def trace_mod(self):
        from repro.sim import trace as trace_mod
        saved_counters = dict(trace_mod.COUNTERS)
        saved_cap = trace_mod._TRACE_CACHE.capacity
        saved_memo_cap = trace_mod._MEMO_CAP
        saved_store = trace_mod._TRACE_STORE
        trace_mod.clear_trace_caches()
        yield trace_mod
        trace_mod._TRACE_STORE = saved_store
        trace_mod.set_trace_cache_capacity(saved_cap)
        trace_mod.set_stream_memo_capacity(saved_memo_cap)
        trace_mod.clear_trace_caches()
        trace_mod.COUNTERS.clear()
        trace_mod.COUNTERS.update(saved_counters)

    def _image(self, filler: int):
        from repro.link import link
        from repro.minic import compile_source
        source = f"""
        int main(void) {{
            int acc = {filler};
            int i;
            for (i = 0; i < 4; i = i + 1) acc = acc + i;
            return acc & 255;
        }}
        """
        return link(compile_source(source).program)

    def test_trace_table_bounded_with_observable_evictions(
            self, trace_mod):
        trace_mod.set_trace_cache_capacity(1)
        trace_mod.COUNTERS["trace_evictions"] = 0
        trace_mod.trace_for(self._image(1), 0)
        trace_mod.trace_for(self._image(2), 0)
        assert len(trace_mod._TRACE_CACHE) == 1
        assert trace_mod.COUNTERS["trace_evictions"] == 1
        assert trace_mod.trace_counters()["trace_evictions"] == 1

    def test_stream_memo_bounded(self, trace_mod):
        trace_mod.set_stream_memo_capacity(2)
        trace = trace_mod.trace_for(self._image(3), 0)
        for key in range(10):
            trace._memo[("probe", key)] = key
        assert len(trace._memo) == 2
        assert trace._memo.evictions == 8

    def test_reuse_table_bounded(self):
        from repro.wcet import cacheanalysis
        saved_cap = cacheanalysis._REUSE_CACHE.capacity
        saved_counters = dict(cacheanalysis.COUNTERS)
        try:
            cacheanalysis.clear_analysis_caches()
            cacheanalysis.set_analysis_cache_capacity(2)
            cacheanalysis.COUNTERS["reuse_evictions"] = 0
            for key in range(5):
                cacheanalysis._reuse_put(("bound-probe", key), key)
            assert len(cacheanalysis._REUSE_CACHE) == 2
            assert cacheanalysis.COUNTERS["reuse_evictions"] == 3
            assert cacheanalysis.reuse_counters()["reuse_evictions"] == 3
        finally:
            cacheanalysis.set_analysis_cache_capacity(saved_cap)
            cacheanalysis.clear_analysis_caches()
            cacheanalysis.COUNTERS.clear()
            cacheanalysis.COUNTERS.update(saved_counters)


# --------------------------------------------------------------------------
# The hardened parallel scheduler
# --------------------------------------------------------------------------

def _crc_tasks():
    from repro.experiments import common
    from repro.memory.cache import CacheConfig
    return [
        common.uncached_task("crc"),
        common.cache_task("crc", CacheConfig(size=256)),
        common.cache_task("crc", CacheConfig(size=512)),
        common.spm_task("crc", 128),
    ]


@pytest.fixture
def scheduler():
    from repro.experiments import common
    saved = (common._TIMEOUT, common._RETRIES, common._BACKOFF)
    yield common
    common._TIMEOUT, common._RETRIES, common._BACKOFF = saved
    common.set_jobs(1)


def _rows(points):
    return [point.row() for point in points]


class TestSchedulerFaults:
    """Crash / hang / flaky units through ``evaluate_points --jobs``."""

    def test_worker_crash_recovers_pool_and_matches_serial(
            self, scheduler, monkeypatch, tmp_path):
        baseline = _rows(scheduler.evaluate_points(_crc_tasks()))
        monkeypatch.setenv("REPRO_FAULT_UNIT",
                           f"crash@1@{tmp_path / 'once'}")
        scheduler.set_jobs(2)
        scheduler.set_resilience(backoff=0.01)
        rows = _rows(scheduler.evaluate_points(_crc_tasks()))
        assert rows == baseline  # pool rebuilt, unit re-run, merge intact
        assert (tmp_path / "once").exists()  # the crash really fired

    def test_hung_worker_killed_by_unit_timeout(
            self, scheduler, monkeypatch, tmp_path):
        baseline = _rows(scheduler.evaluate_points(_crc_tasks()))
        monkeypatch.setenv("REPRO_FAULT_UNIT",
                           f"hang@1@{tmp_path / 'once'}")
        scheduler.set_jobs(2)
        scheduler.set_resilience(timeout=3.0, backoff=0.01)
        start = time.monotonic()
        rows = _rows(scheduler.evaluate_points(_crc_tasks()))
        assert rows == baseline
        assert time.monotonic() - start < 120  # killed, not slept out
        assert (tmp_path / "once").exists()

    def test_flaky_unit_retried_then_succeeds(
            self, scheduler, monkeypatch, tmp_path):
        baseline = _rows(scheduler.evaluate_points(_crc_tasks()))
        monkeypatch.setenv("REPRO_FAULT_UNIT",
                           f"raise@1@{tmp_path / 'once'}")
        scheduler.set_jobs(2)
        scheduler.set_resilience(backoff=0.01)
        rows = _rows(scheduler.evaluate_points(_crc_tasks()))
        assert rows == baseline
        assert (tmp_path / "once").exists()

    def test_exhausted_retries_raise_structured_failure(
            self, scheduler, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_UNIT", "raise@1+")
        scheduler.set_jobs(2)
        scheduler.set_resilience(retries=1, backoff=0.01)
        with pytest.raises(scheduler.SweepFailure) as exc:
            scheduler.evaluate_points(_crc_tasks())
        failure = exc.value
        assert failure.failures  # every unit exhausted
        record = failure.failures[0]
        assert record["bench"] == "crc"
        assert record["attempts"] == 2  # 1 try + 1 retry
        assert "rerun_unit" in record["repro"]
        assert "PYTHONPATH=src" in record["repro"]
        report = failure.report()
        assert "exhausted" in report and "repro:" in report
        assert f"0/{len(_crc_tasks())} points completed" in report
        assert failure.results == [None] * len(_crc_tasks())

    def test_partial_results_merged_on_failure(
            self, scheduler, monkeypatch, tmp_path):
        # Poison only the second unit each process runs: the others
        # must still complete and land at their task indices.
        baseline = _rows(scheduler.evaluate_points(_crc_tasks()))
        monkeypatch.setenv("REPRO_FAULT_UNIT", "raise@2+")
        scheduler.set_resilience(retries=0, backoff=0.0)
        scheduler.set_jobs(2)
        with pytest.raises(scheduler.SweepFailure) as exc:
            scheduler.evaluate_points(_crc_tasks())
        results = exc.value.results
        assert any(point is not None for point in results)
        assert any(point is None for point in results)
        done = [point.row() for point in results if point is not None]
        assert all(row in baseline for row in done)

    def test_rerun_unit_accepts_report_repr(self, scheduler, capsys):
        from repro.experiments.common import plan_units, rerun_unit
        units = plan_units(_crc_tasks())
        unit = units[0]  # the uncached unit
        points = rerun_unit(str(unit))
        assert len(points) == 1
        assert str(points[0].row()) in capsys.readouterr().out

    def test_serial_fault_free_unaffected(self, scheduler):
        # The serial path must not grow scheduling overhead: no pool,
        # no retries, plain plan-order execution.
        rows = _rows(scheduler.evaluate_points(_crc_tasks()))
        assert len(rows) == len(_crc_tasks())


class TestRunnerFailureReporting:
    def test_runner_reports_and_continues(self, monkeypatch, capsys):
        from repro.experiments import common, runner

        def boom(fast=False):
            raise common.SweepFailure(
                [common._unit_failure(((0,), ("crc", "spm", (128,))),
                                      3, "injected")],
                [None])

        monkeypatch.setitem(runner.EXPERIMENTS, "table1", boom)
        assert runner.main(["table1", "table2", "--fast"]) == 1
        captured = capsys.readouterr()
        assert "===== table1" in captured.err and "FAILED" in captured.err
        assert "repro:" in captured.err
        assert "FAILED experiments: table1" in captured.err
        assert "===== table2" in captured.out  # later experiments ran

    def test_timeout_and_retries_flags(self, scheduler, monkeypatch):
        from repro.experiments import runner
        calls = []
        monkeypatch.setitem(runner.EXPERIMENTS, "table1",
                            lambda fast: (calls.append(1) or
                                          {"text": "ok"}))
        assert runner.main(["table1", "--timeout", "0",
                            "--retries", "5"]) == 0
        assert scheduler._TIMEOUT is None
        assert scheduler._RETRIES == 5


# --------------------------------------------------------------------------
# The headline differential: faults never change the artefacts
# --------------------------------------------------------------------------

class TestFaultDifferential:
    def test_serial_torn_store_writes_do_not_change_results(
            self, scheduler, monkeypatch, tmp_path):
        """Serial sweep with every disk-cache write torn: the store
        quarantines on read-back and the sweep recomputes — same rows."""
        from repro.sim import trace as trace_mod
        from repro.wcet import cacheanalysis
        baseline = _rows(scheduler.evaluate_points(_crc_tasks()))
        saved_trace = trace_mod._TRACE_STORE
        saved_reuse = cacheanalysis._REUSE_STORE
        try:
            trace_mod.set_trace_cache_dir(tmp_path / "traces")
            cacheanalysis.set_analysis_cache_dir(tmp_path / "analysis")
            trace_mod.clear_trace_caches()
            cacheanalysis.clear_analysis_caches()
            monkeypatch.setenv("REPRO_FAULT_STORE_WRITE", "torn@1+")
            rows = _rows(scheduler.evaluate_points(_crc_tasks()))
        finally:
            trace_mod._TRACE_STORE = saved_trace
            cacheanalysis._REUSE_STORE = saved_reuse
            trace_mod.clear_trace_caches()
            cacheanalysis.clear_analysis_caches()
        assert rows == baseline

    def test_runner_artefacts_identical_after_worker_crash(
            self, tmp_path):
        """Cold ``repro-experiments fig4 --fast``: fault-free versus a
        worker crash mid-sweep with ``--jobs 2`` — stdout must be
        byte-identical once elapsed-seconds stamps are normalised."""
        def run(extra_args, extra_env):
            env = dict(os.environ)
            env.pop("REPRO_FAULT_UNIT", None)
            env.pop("REPRO_FAULT_STORE_WRITE", None)
            env["PYTHONPATH"] = os.path.join(REPO, "src")
            env.update(extra_env)
            proc = subprocess.run(
                [sys.executable, "-m", "repro.experiments.runner",
                 "fig4", "--fast"] + extra_args,
                capture_output=True, text=True, env=env, cwd=REPO,
                timeout=600)
            assert proc.returncode == 0, proc.stderr
            import re
            return re.sub(r"\(\d+(\.\d+)?s\)", "(Xs)", proc.stdout)

        baseline = run([], {})
        crashed = run(
            ["--jobs", "2"],
            {"REPRO_FAULT_UNIT": f"crash@1@{tmp_path / 'once'}"})
        assert (tmp_path / "once").exists()  # the fault really fired
        assert crashed == baseline


# --------------------------------------------------------------------------
# The repro-cc cache subcommand
# --------------------------------------------------------------------------

class TestCacheCli:
    def _store(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for index in range(4):
            store.store(index, {"payload": index})
        return store

    def test_stats(self, tmp_path, capsys):
        from repro.cli import main
        self._store(tmp_path)
        assert main(["cache", "stats", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "# entries:     4" in out
        assert "# quarantined: 0" in out

    def test_verify_flags_corruption(self, tmp_path, capsys):
        from repro.cli import main
        store = self._store(tmp_path)
        assert main(["cache", "verify", str(tmp_path)]) == 0
        corrupt_file(store.path_for(2))
        assert main(["cache", "verify", str(tmp_path)]) == 1
        assert "quarantined 1" in capsys.readouterr().out

    def test_gc_requires_cap_and_enforces_it(self, tmp_path, capsys):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["cache", "gc", str(tmp_path)])
        self._store(tmp_path)
        assert main(["cache", "gc", str(tmp_path),
                     "--max-bytes", "1"]) == 0
        assert "# evicted 4" in capsys.readouterr().out

    def test_clear(self, tmp_path, capsys):
        from repro.cli import main
        self._store(tmp_path)
        assert main(["cache", "clear", str(tmp_path)]) == 0
        assert "# removed 4" in capsys.readouterr().out
        assert ArtifactStore(tmp_path).stats()["entries"] == 0

    def test_missing_directory_rejected(self, tmp_path):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["cache", "stats", str(tmp_path / "nope")])


# --------------------------------------------------------------------------
# End-to-end: the disk caches survive fault + reuse cycles intact
# --------------------------------------------------------------------------

class TestStoreTraceIntegration:
    def test_trace_layer_survives_corruption_cycle(self, tmp_path):
        from repro.link import link
        from repro.minic import compile_source
        from repro.sim import trace as trace_mod
        source = """
        int main(void) {
            int i; int acc = 0;
            for (i = 0; i < 8; i = i + 1) acc = acc + i;
            return acc & 255;
        }
        """
        image = link(compile_source(source).program)
        saved = trace_mod._TRACE_STORE
        try:
            trace_mod.set_trace_cache_dir(tmp_path)
            trace_mod.clear_trace_caches()
            first = trace_mod.trace_for(image, 0)
            # Corrupt every committed entry; reload must quarantine,
            # re-record, and agree exactly with the first recording.
            for entry in tmp_path.rglob("*.trace.pkl"):
                truncate_file(str(entry))
            trace_mod.clear_trace_caches()
            again = trace_mod.trace_for(image, 0)
            assert again.ops == first.ops
            assert again.base_cycles == first.base_cycles
            store = trace_mod.trace_store()
            assert store.counters["corrupt"] >= 1
            # The cycle ends healthy: a clean entry is back on disk.
            trace_mod.clear_trace_caches()
            reloaded = trace_mod.trace_for(image, 0)
            assert reloaded.ops == first.ops
            assert store.counters["hits"] >= 1
        finally:
            trace_mod._TRACE_STORE = saved
            trace_mod.clear_trace_caches()


# --------------------------------------------------------------------------
# Satellite (PR 9): the store under concurrent multi-process writers
# --------------------------------------------------------------------------

# Two unrelated processes hammer one store root: same keys, identical
# values (content-addressed discipline), interleaved gc under a byte
# budget small enough to force evictions *while* the sibling is
# writing and reading the same entries.  Every sibling-induced race
# (entry vanishing between listdir and stat/unlink, replace landing
# over a fresh sibling write) must degrade to a miss or a recount —
# never to an exception, and never to a false quarantine.
_STRESS_WORKER = """
import sys
sys.path.insert(0, sys.argv[1])
from repro.store import ArtifactStore

store = ArtifactStore(sys.argv[2])
for round in range(10):
    for i in range(25):
        value = [i] * (i % 7 + 1)
        store.store(("stress", i), value)
        loaded = store.load(("stress", i))
        # A miss (sibling gc'd it) is legal; a different value is not.
        assert loaded is None or loaded == value, (i, loaded)
    store.gc(max_bytes=4096)
report = store.verify()
print("quarantined=%d" % report["quarantined"])
"""


class TestConcurrentStoreWriters:
    def test_two_process_stress(self, tmp_path):
        root = tmp_path / "shared-store"
        first = subprocess.Popen(
            [sys.executable, "-c", _STRESS_WORKER,
             os.path.join(REPO, "src"), str(root)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        second = subprocess.Popen(
            [sys.executable, "-c", _STRESS_WORKER,
             os.path.join(REPO, "src"), str(root)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        for proc in (first, second):
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
            assert "quarantined=0" in out, (out, err)
        # The surviving store is healthy: nothing quarantined, every
        # remaining entry loads back as the one true value.
        store = ArtifactStore(root)
        assert store.verify()["quarantined"] == 0
        for i in range(25):
            loaded = store.load(("stress", i))
            assert loaded is None or loaded == [i] * (i % 7 + 1)

    def test_reap_tmp_spares_own_inflight_files(self, tmp_path):
        """reap only collects *foreign* orphans, never this pid's."""
        store = ArtifactStore(tmp_path)
        mine = tmp_path / f"x.pkl.tmp{os.getpid()}"
        foreign = tmp_path / "x.pkl.tmp999999"
        for path in (mine, foreign):
            path.write_bytes(b"inflight")
            os.utime(path, (time.time() - 3600, time.time() - 3600))
        assert store.reap_tmp(max_age=60) == 1
        assert mine.exists()
        assert not foreign.exists()


# --------------------------------------------------------------------------
# Satellite (PR 9): serve-fault parsing + fork-reset trigger counting
# --------------------------------------------------------------------------

class TestServeFaultSpec:
    def test_counts_per_process(self, monkeypatch):
        from repro.testing import faults
        monkeypatch.setenv("REPRO_FAULT_SERVE", "garbage@2")
        assert faults.serve_fault() is None
        assert faults.serve_fault() == "garbage"
        assert faults.serve_fault() is None

    def test_repeat_spec(self, monkeypatch):
        from repro.testing import faults
        monkeypatch.setenv("REPRO_FAULT_SERVE", "drop@2+")
        assert faults.serve_fault() is None
        assert faults.serve_fault() == "drop"
        assert faults.serve_fault() == "drop"

    def test_unknown_kind_rejected(self, monkeypatch):
        from repro.testing import faults
        monkeypatch.setenv("REPRO_FAULT_SERVE", "explode@1")
        with pytest.raises(ValueError):
            faults.serve_fault()

    def test_unset_is_free(self):
        from repro.testing import faults
        assert faults.serve_fault() is None
        assert faults._COUNTS["serve"] == 0


def _fork_probe(queue):
    """Runs in a forked child: report reset counter + fault outcome."""
    from repro.testing import faults
    inherited = faults._COUNTS["unit"]
    try:
        faults.unit_fault()
        fired = False
    except FaultInjected:
        fired = True
    queue.put((inherited, fired))


@pytest.mark.skipif(not hasattr(os, "register_at_fork"),
                    reason="needs fork hooks")
class TestForkCounterReset:
    def test_children_count_from_zero_and_once_path_is_global(
            self, tmp_path, monkeypatch):
        """The PR-9 fix: @n triggers and @once-path arbitration behave
        identically in forked pool workers and fresh processes.

        The parent burns trigger counts first; without the at-fork
        reset each child would inherit them and ``raise@1@path`` could
        never fire in any worker.  With it, the *first* child fires
        (and claims the once-file); the second child's trigger also
        counts from zero but loses the once-file race.
        """
        import multiprocessing
        from repro.testing import faults
        once = tmp_path / "once.marker"
        monkeypatch.setenv("REPRO_FAULT_UNIT", f"raise@1@{once}")
        # Parent consumes trigger counts (but not the once-file: its
        # own calls already passed n=1 by the time the env is read).
        faults._COUNTS["unit"] = 5
        context = multiprocessing.get_context("fork")
        queue = context.Queue()
        for _ in range(2):
            child = context.Process(target=_fork_probe, args=(queue,))
            child.start()
            child.join(30)
            assert child.exitcode == 0
        results = sorted(queue.get(timeout=10) for _ in range(2))
        # Both children saw a zeroed counter; exactly one fired.
        assert [inherited for inherited, _ in results] == [0, 0]
        assert [fired for _, fired in results] == [False, True]
        assert once.exists()
        # The parent's own counter is untouched by the fork hook.
        assert faults._COUNTS["unit"] == 5
