"""Trace-driven replay vs. the execution engine, bit for bit.

Three layers of evidence that replay is exact:

* a **differential suite** records each benchmark's trace once and
  replays it under every committed hierarchy shape, asserting the full
  ``SimResult`` (cycles, instructions, exit code, console, per-level
  stats) equals executing on the engine;
* a **randomized property test** for the single-pass Mattson kernel:
  synthetic traces with adversarial reuse/write patterns must yield the
  same hit counts and cycles from ``replay_sweep`` as from per-size
  replays (and per-size execution is pinned by the differential layer);
* **cache tests**: content-addressed invalidation, the shared disk
  layer, and the reuse counters that prove a workflow size sweep is
  served by one recorded trace and one single-pass replay.
"""

import random
from array import array

import pytest

from repro.benchmarks import BENCHMARKS, get
from repro.link import link
from repro.memory import CacheConfig, SystemConfig
from repro.memory.regions import MAIN_BASE
from repro.minic import compile_source
from repro.sim import SimError, Simulator, simulate
from repro.sim import trace as trace_mod
from repro.sim.replay import (replay, replay_misses, replay_sweep,
                              sweep_geometry)
from repro.sim.trace import (
    READ_TAGS,
    WRITE_TAGS,
    Trace,
    clear_trace_caches,
    record_trace,
    set_trace_cache_dir,
    trace_for,
)
from repro.sim import kernels
from repro.workflow import Workflow

#: Workflow pricing runs the IPET LP, which has a hard numpy
#: dependency — unlike replay itself, which falls back to the scalar
#: kernels (the numpy-less CI job runs this module).
needs_lp = pytest.mark.skipif(not kernels.have_numpy(),
                              reason="WCET pricing needs the numpy "
                                     "LP solver")

SPM_SIZE = 512

#: Every committed hierarchy shape (the test_sim_fastpath set plus the
#: non-LRU policies, which exercise the generic replay walk).
SHAPES = {
    "uncached": lambda: SystemConfig.uncached(),
    "spm": lambda: SystemConfig.scratchpad(SPM_SIZE),
    "l1": lambda: SystemConfig.cached(CacheConfig(size=512)),
    "l1-2way": lambda: SystemConfig.cached(CacheConfig(size=512, assoc=2)),
    "l1-fifo": lambda: SystemConfig.cached(
        CacheConfig(size=512, assoc=2, replacement="fifo")),
    "l1-random": lambda: SystemConfig.cached(
        CacheConfig(size=512, assoc=4, replacement="random")),
    "icache": lambda: SystemConfig.cached(
        CacheConfig(size=512, unified=False)),
    "hybrid": lambda: SystemConfig.hybrid(SPM_SIZE, CacheConfig(size=256)),
    "l1+l2": lambda: SystemConfig.two_level(
        CacheConfig(size=256), CacheConfig(size=1024)),
    "split-i/d": lambda: SystemConfig.split_l1(
        CacheConfig(size=256, unified=False), CacheConfig(size=256)),
}

_PROGRAMS = {}
_IMAGES = {}
_TRACES = {}


def _program(bench):
    if bench not in _PROGRAMS:
        _PROGRAMS[bench] = compile_source(get(bench).source()).program
    return _PROGRAMS[bench]


def _image(bench, spm: bool):
    key = (bench, spm)
    if key not in _IMAGES:
        program = _program(bench)
        if not spm:
            _IMAGES[key] = link(program)
        else:
            chosen, used = [], 0
            for name, _kind, size in sorted(program.memory_objects(),
                                            key=lambda o: (o[2], o[0])):
                aligned = (size + 3) & ~3
                if used + aligned <= SPM_SIZE:
                    chosen.append(name)
                    used += aligned
            _IMAGES[key] = link(program, spm_size=SPM_SIZE,
                                spm_objects=chosen)
    return _IMAGES[key]


def _trace(bench, spm: bool):
    key = (bench, spm)
    if key not in _TRACES:
        _TRACES[key] = record_trace(_image(bench, spm),
                                    SPM_SIZE if spm else 0)
    return _TRACES[key]


def _stats_tuple(stats):
    if stats is None:
        return None
    return (stats.fetch_hits, stats.fetch_misses, stats.read_hits,
            stats.read_misses, stats.write_hits, stats.write_misses)


def _assert_same(replayed, executed, context):
    assert replayed.cycles == executed.cycles, context
    assert replayed.instructions == executed.instructions, context
    assert replayed.exit_code == executed.exit_code, context
    assert replayed.console == executed.console, context
    assert _stats_tuple(replayed.cache_stats) == \
        _stats_tuple(executed.cache_stats), context
    assert set(replayed.level_stats) == set(executed.level_stats), context
    for level in executed.level_stats:
        assert _stats_tuple(replayed.level_stats[level]) == \
            _stats_tuple(executed.level_stats[level]), (context, level)


# -- differential: every benchmark × every committed shape -------------------

@pytest.mark.parametrize("shape", sorted(SHAPES))
@pytest.mark.parametrize("bench", sorted(BENCHMARKS))
def test_replay_matches_engine(bench, shape):
    config = SHAPES[shape]()
    spm = bool(config.spm_size)
    image = _image(bench, spm)
    executed = Simulator(image, config).run()
    replayed = replay(_trace(bench, spm), config)
    _assert_same(replayed, executed, (bench, shape))


def test_sweep_matches_engine_and_per_size_replay():
    sizes = (64, 128, 256, 512, 1024, 2048, 4096, 8192)
    for unified in (True, False):
        configs = [SystemConfig.cached(
            CacheConfig(size=size, unified=unified)) for size in sizes]
        trace = _trace("crc", spm=False)
        swept = replay_sweep(trace, configs)
        for config, from_sweep in zip(configs, swept):
            _assert_same(from_sweep, replay(trace, config),
                         (config.name, unified))
            _assert_same(from_sweep,
                         simulate(_image("crc", False), config),
                         (config.name, unified))


def test_replay_rejects_mismatched_spm_split():
    trace = _trace("crc", spm=False)
    with pytest.raises(ValueError):
        replay(trace, SystemConfig.scratchpad(SPM_SIZE))


def test_replay_respects_step_budget():
    from repro.sim import SimError
    trace = _trace("crc", spm=False)
    with pytest.raises(SimError):
        replay(trace, SystemConfig.uncached(),
               max_steps=trace.instructions - 1)


# -- randomized property: single pass == per-size replay ---------------------

def _random_trace(rng, accesses=4000, blocks=96):
    """A synthetic main-memory stream with heavy set conflicts."""
    line = 16
    ops = array("Q")
    op_counts = [0] * 8
    addrs = [MAIN_BASE + rng.randrange(blocks) * line +
             rng.randrange(line // 4) * 4 for _ in range(accesses)]
    for addr in addrs:
        roll = rng.random()
        if roll < 0.6:
            tag = 0
        elif roll < 0.85:
            tag = READ_TAGS[rng.choice((1, 2, 4))]
        else:
            tag = WRITE_TAGS[rng.choice((1, 2, 4))]
        if tag in (1, 4):
            addr += rng.randrange(4)  # byte accesses need no alignment
        elif tag in (2, 5):
            addr += rng.choice((0, 2))
        ops.append((addr << 3) | tag)
        op_counts[tag] += 1
    return Trace(ops=ops, op_counts=tuple(op_counts),
                 spm_counts=(0,) * 8, base_cycles=rng.randrange(1000),
                 instructions=accesses, exit_code=0, console=(),
                 spm_size=0)


@pytest.mark.parametrize("seed", range(8))
@pytest.mark.parametrize("unified", (True, False))
def test_sweep_property_random_traces(seed, unified):
    rng = random.Random(0xC0FFEE + seed)
    trace = _random_trace(rng)
    sizes = (64, 128, 256, 512, 1024)
    configs = [SystemConfig.cached(CacheConfig(size=size, unified=unified))
               for size in sizes]
    for from_sweep, config in zip(replay_sweep(trace, configs), configs):
        _assert_same(from_sweep, replay(trace, config),
                     (seed, unified, config.name))


def test_sweep_geometry_gate():
    assert sweep_geometry(SystemConfig.cached(CacheConfig(size=256))) \
        == (16, True, 0)
    assert sweep_geometry(
        SystemConfig.cached(CacheConfig(size=256, unified=False))) \
        == (16, False, 0)
    # Not sweepable: associativity, non-LRU, deeper pipelines, split I/D.
    assert sweep_geometry(
        SystemConfig.cached(CacheConfig(size=256, assoc=2))) is None
    assert sweep_geometry(SystemConfig.cached(
        CacheConfig(size=256, replacement="fifo"))) is None
    assert sweep_geometry(SystemConfig.two_level(
        CacheConfig(size=256), CacheConfig(size=1024))) is None
    assert sweep_geometry(SystemConfig.split_l1(
        CacheConfig(size=256, unified=False),
        CacheConfig(size=256))) is None
    assert sweep_geometry(SystemConfig.uncached()) is None
    with pytest.raises(ValueError):
        replay_sweep(_trace("crc", False),
                     [SystemConfig.cached(CacheConfig(size=256)),
                      SystemConfig.cached(CacheConfig(size=512, assoc=2))])


# -- the content-addressed trace cache ---------------------------------------

@pytest.fixture
def fresh_trace_cache():
    clear_trace_caches()
    saved = dict(trace_mod.COUNTERS)
    yield trace_mod.COUNTERS
    clear_trace_caches()
    set_trace_cache_dir(None)
    trace_mod.COUNTERS.update(saved)


def test_trace_cache_hits_and_invalidation(fresh_trace_cache):
    counters = fresh_trace_cache
    counters.update(trace_hits=0, trace_misses=0, trace_records=0)
    image = _image("crc", spm=False)
    first = trace_for(image, 0)
    assert counters["trace_misses"] == 1
    assert trace_for(image, 0) is first
    assert counters["trace_hits"] == 1
    assert counters["trace_records"] == 1
    # A different placement of the same program is a different image
    # content key: the cache must re-record, not serve a stale stream.
    other = trace_for(_image("crc", spm=True), SPM_SIZE)
    assert counters["trace_records"] == 2
    assert other.spm_size == SPM_SIZE
    assert sum(other.spm_counts) > 0


def test_trace_disk_layer_roundtrip(tmp_path, fresh_trace_cache):
    counters = fresh_trace_cache
    set_trace_cache_dir(tmp_path)
    image = _image("adpcm", spm=False)
    counters.update(trace_hits=0, trace_misses=0, trace_disk_hits=0,
                    trace_records=0)
    first = trace_for(image, 0)
    assert counters["trace_records"] == 1
    # A fresh process is modelled by clearing the in-memory layer: the
    # trace must come back from disk, identical, without re-recording.
    clear_trace_caches()
    reloaded = trace_for(image, 0)
    assert counters["trace_disk_hits"] == 1
    assert counters["trace_records"] == 1
    assert reloaded.ops == first.ops
    assert reloaded.base_cycles == first.base_cycles
    assert reloaded.console == first.console
    # Corrupt entries are quarantined (counted, moved aside — PR 8's
    # store envelope makes "silently ignored" impossible) and the
    # trace is re-recorded.
    clear_trace_caches()
    entries = list(tmp_path.rglob("*.trace.pkl"))
    assert entries, "store wrote no sharded entries"
    for entry in entries:
        entry.write_bytes(b"not a pickle")
    again = trace_for(image, 0)
    assert counters["trace_records"] == 2
    assert again.ops == first.ops
    store_counts = trace_mod.trace_counters()
    assert store_counts["trace_store_corrupt"] >= 1
    assert list((tmp_path / "corrupt").iterdir())


# -- workflow integration: sweeps are served by one trace + one pass ---------

_SWEEP_SOURCE = """
int table[96];
int main(void) {
    int i;
    int acc;
    acc = 0;
    for (i = 0; i < 96; i++) { table[i] = i * 3; }
    for (i = 0; i < 96; i++) { acc += table[i] & 15; }
    return acc & 255;
}
"""


@needs_lp
def test_workflow_cache_sweep_reuses_one_trace(fresh_trace_cache):
    counters = fresh_trace_cache
    counters.update(trace_hits=0, trace_misses=0, trace_records=0,
                    sweep_passes=0, sweep_points=0, replay_runs=0)
    workflow = Workflow(_SWEEP_SOURCE)
    sizes = (64, 128, 256, 512, 1024, 2048, 4096, 8192)
    points = workflow.cache_sweep(sizes=sizes)
    assert [p.config.cache.size for p in points] == list(sizes)
    # One recorded trace, one single-pass replay, eight points served.
    assert counters["trace_records"] == 1
    assert counters["sweep_passes"] == 1
    assert counters["sweep_points"] == len(sizes)
    assert counters["replay_runs"] == 0
    # The persistence variant re-analyses WCET but reuses every sim.
    persisted = workflow.cache_sweep(sizes=sizes, persistence=True)
    assert counters["trace_records"] == 1
    assert counters["sweep_passes"] == 1
    for plain, persist in zip(points, persisted):
        assert persist.sim is plain.sim
    # Every replayed sim matches executing the point on the engine.
    for point in points:
        _assert_same(point.sim,
                     simulate(point.image, point.config), point.config.name)


@needs_lp
def test_workflow_mixed_geometry_sweep(fresh_trace_cache):
    counters = fresh_trace_cache
    counters.update(trace_records=0, sweep_passes=0, grid_passes=0,
                    grid_points=0, replay_runs=0)
    workflow = Workflow(_SWEEP_SOURCE)
    specs = [
        (CacheConfig(size=64), False),
        (CacheConfig(size=256, assoc=2), False),   # joins the grid pass
        (CacheConfig(size=128), False),
        (CacheConfig(size=64, unified=False), False),  # separate group
        (CacheConfig(size=256), False),
        (CacheConfig(size=128, unified=False), False),
    ]
    points = workflow.cache_points(specs)
    assert [p.config.cache for p in points] == [cache for cache, _ in specs]
    assert counters["trace_records"] == 1
    assert counters["grid_passes"] == 1    # unified trio + the 2-way point
    assert counters["grid_points"] == 4
    assert counters["sweep_passes"] == 1   # all-DM icache pair
    assert counters["replay_runs"] == 0
    for point in points:
        _assert_same(point.sim,
                     simulate(point.image, point.config), point.config.name)


@needs_lp
def test_uncached_point_is_memoized():
    workflow = Workflow(_SWEEP_SOURCE)
    assert workflow.uncached_point() is workflow.uncached_point()


# -- replay-served per-pc miss counters ---------------------------------------

MISS_BENCHES = ("crc", "matmult", "fir")


@pytest.mark.parametrize("shape", sorted(SHAPES))
@pytest.mark.parametrize("bench", MISS_BENCHES)
def test_replay_misses_matches_recording_engine(bench, shape):
    """replay_misses == simulate(record_misses=True), per pc, per shape.

    The trace carries the owning pc of every fetch (continuation entries
    are tagged TAG_FETCH_CONT), so the per-instruction miss attribution
    the WCET-vs-observed tooling consumes must be reproducible from the
    recorded stream without re-executing."""
    spm = shape in ("spm", "hybrid")
    config = SHAPES[shape]()
    executed = Simulator(_image(bench, spm), config).run(record_misses=True)
    fetch, main = replay_misses(_trace(bench, spm), config)
    context = f"{bench}/{shape}"
    assert fetch == dict(executed.fetch_misses), context
    assert main == dict(executed.fetch_main_misses), context


def test_replay_misses_attributes_bl_continuations():
    """A missing second halfword of BL counts once, at the call's pc."""
    image = _image("crc", False)
    trace = _trace("crc", False)
    bl_pcs = {addr for addr, instr in Simulator(
        image, SystemConfig.uncached()).code.items() if instr.size == 4}
    assert bl_pcs, "benchmark must contain 32-bit call instructions"
    cont = [v >> 3 for v in trace.ops if v & 7 == 7]
    assert cont and all(pc - 2 in bl_pcs for pc in cont)
    fetch, _ = replay_misses(trace, SHAPES["l1"]())
    assert set(fetch) <= {addr for addr, instr in Simulator(
        image, SystemConfig.uncached()).code.items()}


def test_replay_misses_checks_budget_and_spm():
    trace = _trace("crc", True)
    with pytest.raises(SimError):
        replay_misses(trace, SHAPES["spm"](), max_steps=1)
    with pytest.raises(ValueError):
        replay_misses(trace, SystemConfig.uncached())


# -- write-recency regression: shared-stack sweeps vs write traffic ----------

_WRITE_HEAVY_SOURCE = """
int big[256];
int mirror[256];
int main(void) {
    int i;
    int j;
    int acc = 0;
    for (j = 0; j < 6; j++) {
        for (i = 0; i < 256; i++) {
            big[i & 255] = i + j;
        }
        for (i = 0; i < 128; i++) {
            mirror[(i * 2) & 255] = big[(255 - i) & 255];
        }
        acc = acc + big[j & 255] + mirror[(j * 3) & 255];
    }
    return acc & 255;
}
"""


def test_write_heavy_sweep_matches_per_size_replay(fresh_trace_cache):
    """Write-through/no-allocate traffic must not corrupt the shared
    Mattson recency stack of a single-pass size sweep.

    Writes never allocate in the modelled caches, so in the shared
    last-allocation-per-set recency structure a write must refresh the
    stats of *resident* blocks only — recording it as an allocation
    would make larger sweep sizes disagree with their per-size replays
    on any write-dominated stream.  This pins the subtlety with a
    program whose data traffic is mostly stores.
    """
    image = link(compile_source(_WRITE_HEAVY_SOURCE).program)
    trace = record_trace(image, 0)
    _fetches, _reads, writes = trace.counts_by_kind()
    # The premise: a heavy store stream hammering many distinct sets
    # (stack-resident scalars keep the read count high regardless).
    assert writes > 2000
    sizes = (64, 128, 256, 512, 1024)
    for unified in (True, False):
        configs = [SystemConfig.cached(CacheConfig(size=size,
                                                   unified=unified))
                   for size in sizes]
        swept = replay_sweep(trace, configs)
        for config, result in zip(configs, swept):
            _assert_same(result, replay(trace, config), config.name)
            _assert_same(result, simulate(image, config), config.name)


def test_write_heavy_generated_program_sweep(fresh_trace_cache):
    """Same differential on a store-heavy generated workload, via the
    public Workflow sweep (one recorded trace, one sweep pass)."""
    from repro.gen import generate
    for seed in range(40):
        program = generate(seed, "small")
        image = link(compile_source(program.source).program)
        trace = record_trace(image, 0)
        _fetches, reads, writes = trace.counts_by_kind()
        if writes * 3 > reads:      # a store-rich seed
            break
    else:
        pytest.skip("no store-rich seed in the probe range")
    sizes = (64, 128, 256)
    configs = [SystemConfig.cached(CacheConfig(size=size))
               for size in sizes]
    for config, result in zip(configs, replay_sweep(trace, configs)):
        _assert_same(result, simulate(image, config), config.name)
        assert result.exit_code == program.expected_exit
