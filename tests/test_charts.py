"""ASCII chart rendering for the figure experiments."""

from repro.experiments.charts import ascii_chart, cycles_chart, ratio_chart


class TestAsciiChart:
    def test_scaling_to_peak(self):
        rows = [(1, {"a": 10.0}), (2, {"a": 5.0})]
        text = ascii_chart(rows, ["a"], width=10)
        lines = [l for l in text.splitlines() if l.strip()]
        assert lines[0].count("#") == 10   # the peak fills the width
        assert lines[1].count("#") == 5

    def test_half_marks(self):
        rows = [(1, {"a": 4.0}), (2, {"a": 3.5})]
        text = ascii_chart(rows, ["a"], width=4)
        lines = [l for l in text.splitlines() if l.strip()]
        assert "###+" in lines[1]  # 3.5/4 of width 4 = 3.5 units

    def test_series_grouping(self):
        rows = [(64, {"spm": 1.0, "cache": 2.0})]
        text = ascii_chart(rows, ["spm", "cache"])
        assert "spm" in text and "cache" in text

    def test_missing_series_skipped(self):
        rows = [(1, {"a": 1.0}), (2, {})]
        text = ascii_chart(rows, ["a"])
        assert text.count("a ") >= 1

    def test_zero_values(self):
        rows = [(1, {"a": 0.0})]
        text = ascii_chart(rows, ["a"])
        assert "0.000" in text

    def test_ratio_chart_wrapper(self):
        rows = [{"size": 64, "spm_ratio": 1.3, "cache_ratio": 2.2},
                {"size": 128, "spm_ratio": 1.4, "cache_ratio": 3.1}]
        text = ratio_chart(rows)
        assert "spm" in text and "cache" in text
        assert "3.100" in text

    def test_cycles_chart_wrapper(self):
        rows = [{"size": 64, "sim_cycles": 1_000_000,
                 "wcet_cycles": 2_000_000}]
        text = cycles_chart(rows)
        assert "1,000,000" in text
        assert "2,000,000" in text
