"""Text assembler: parsing, layout, relocation, relaxation."""

import struct

import pytest

from repro.isa import AsmError, Assembler, Op, assemble, decode
from repro.isa.assembler import (
    Align,
    Data,
    Label,
    WordRef,
    layout_items,
    relax_branches,
)
from repro.isa import instruction as ins


def decode_all(code, base=0):
    words = struct.unpack(f"<{len(code) // 2}H", code)
    out = []
    index = 0
    while index < len(words):
        nxt = words[index + 1] if index + 1 < len(words) else None
        instr = decode(words[index], base + 2 * index, nxt)
        out.append(instr)
        index += instr.size // 2
    return out


class TestParsing:
    def test_labels_and_instructions(self):
        code, symbols = assemble("start: mov r0, #1\n  b start\n")
        assert symbols == {"start": 0}
        decoded = decode_all(code)
        assert decoded[0].op is Op.MOVI
        assert decoded[1].target == 0

    def test_multiple_labels_one_line(self):
        _code, symbols = assemble("a: b: nop\n")
        assert symbols == {"a": 0, "b": 0}

    def test_comments_stripped(self):
        code, _ = assemble("nop ; comment\nnop @ other comment\n")
        assert len(code) == 4

    def test_word_half_byte(self):
        code, _ = assemble(".byte 1, 2\n.half 0x1234\n.word 0xdeadbeef\n")
        assert code[0:2] == bytes([1, 2])
        assert code[2:4] == (0x1234).to_bytes(2, "little")
        assert code[4:8] == (0xDEADBEEF).to_bytes(4, "little")

    def test_word_symbol_reference(self):
        code, _ = assemble("x: nop\n.align 4\n.word x\n",
                           base_addr=0x100)
        assert code[-4:] == (0x100).to_bytes(4, "little")

    def test_space_and_align(self):
        code, symbols = assemble("nop\n.align 8\nhere: .space 3\n")
        assert symbols["here"] == 8
        assert len(code) == 11

    def test_memory_operand_forms(self):
        code, _ = assemble(
            "ldr r0, [r1, #4]\nstr r2, [r3, r4]\nldrb r5, [r6, #0]\n"
            "ldrsh r7, [r0, r1]\nldr r2, [sp, #16]\nldr r3, [pc, #8]\n")
        decoded = decode_all(code)
        ops = [i.op for i in decoded]
        assert ops == [Op.LDRWI, Op.STRW_R, Op.LDRBI, Op.LDRSH_R,
                       Op.LDRSP, Op.LDRPC]

    def test_push_pop_with_lr_pc(self):
        code, _ = assemble("push {r4, r5, lr}\npop {r4, r5, pc}\n")
        decoded = decode_all(code)
        assert decoded[0].with_link and decoded[1].with_link

    def test_sp_arithmetic(self):
        code, _ = assemble("add sp, #16\nsub sp, #16\nadd r0, sp, #8\n")
        decoded = decode_all(code)
        assert decoded[0].imm == 16
        assert decoded[1].imm == -16
        assert decoded[2].op is Op.ADDSPI

    def test_conditional_branch_mnemonics(self):
        code, _ = assemble("x: beq x\nbne x\nblt x\nbhs x\n")
        decoded = decode_all(code)
        assert all(i.op is Op.BCC for i in decoded)

    def test_errors(self):
        with pytest.raises(AsmError):
            assemble("frobnicate r0\n")
        with pytest.raises(AsmError):
            assemble("mov r9, #1\n")  # high register
        with pytest.raises(AsmError):
            assemble(".unknown 3\n")
        with pytest.raises(AsmError):
            assemble("push r4\n")  # missing braces

    def test_undefined_symbol_is_a_link_error(self):
        from repro.isa.encoding import EncodingError
        with pytest.raises(EncodingError):
            assemble("b nowhere\n")


class TestLayout:
    def test_layout_is_symbol_free(self):
        items = Assembler().parse("x: nop\nbl far_away\n.word x\n")
        placed, symbols, size = layout_items(items, 0x200)
        assert symbols["x"] == 0x200
        assert size == 2 + 4 + 2 + 4  # nop + bl + align pad + word

    def test_wordref_alignment(self):
        items = [ins.nop(), WordRef("sym")]
        placed, _symbols, size = layout_items(items, 0)
        addrs = [addr for addr, _ in placed]
        assert size == 8            # nop, 2 pad, 4 data
        assert addrs[-1] % 4 == 0

    def test_extern_resolution(self):
        code, _ = assemble("bl callee\n", base_addr=0x100,
                           extern=lambda s: 0x4000 if s == "callee" else
                           None)
        decoded = decode_all(code, 0x100)
        assert decoded[0].target == 0x4000


class TestRelaxation:
    def test_short_branch_untouched(self):
        from repro.isa.opcodes import Cond
        items = [Label("top"), ins.nop(),
                 ins.bcc(Cond.EQ, "top")]
        relaxed = relax_branches(items, prefix="t")
        assert sum(1 for i in relaxed if isinstance(i, Label)) == 1

    def test_long_branch_relaxed(self):
        from repro.isa.opcodes import Cond
        items = [Label("top")]
        items += [ins.nop() for _ in range(300)]  # 600 bytes
        items.append(ins.bcc(Cond.EQ, "top"))
        relaxed = relax_branches(items, prefix="t")
        ops = [i.op for i in relaxed if hasattr(i, "op")]
        assert Op.B in ops  # inverted-condition + unconditional pair
        # The whole stream must still assemble.
        from repro.isa.assembler import assemble_items
        code, symbols = assemble_items(relaxed)
        assert symbols["top"] == 0

    def test_relaxed_condition_inverted(self):
        from repro.isa.opcodes import Cond
        items = [Label("top")]
        items += [ins.nop() for _ in range(300)]
        items.append(ins.bcc(Cond.LT, "top"))
        relaxed = relax_branches(items, prefix="t")
        bcc = [i for i in relaxed
               if hasattr(i, "op") and i.op is Op.BCC][0]
        assert bcc.cond is Cond.GE
