"""Workflow pipelines and experiment regeneration (fast sweeps).

These are the repository's integration tests: they regenerate reduced
versions of the paper's artefacts and assert the *qualitative shapes* the
paper reports (constant SPM ratio, growing cache ratio, small-cache
degradation, tight worst-case-input bound).
"""

import pytest

from repro.benchmarks import get
from repro.experiments import (
    ablation_cacheconfig,
    ablation_persistence,
    ablation_wcet_alloc,
    fig2_annotations,
    fig3_g721,
    fig4_ratio_g721,
    fig5_ratio_multisort,
    fig6_adpcm,
    table1,
    table2,
    xtra_worstcase_sort,
)
from repro.memory import CacheConfig
from repro.workflow import PAPER_SIZES, Workflow


@pytest.fixture(scope="module")
def adpcm_workflow():
    return Workflow(get("adpcm").source())


class TestWorkflow:
    def test_paper_sizes(self):
        assert PAPER_SIZES == (64, 128, 256, 512, 1024, 2048, 4096, 8192)

    def test_profile_cached(self, adpcm_workflow):
        assert adpcm_workflow.profile() is adpcm_workflow.profile()

    def test_spm_point_fields(self, adpcm_workflow):
        point = adpcm_workflow.spm_point(256)
        assert point.allocation.spm_size == 256
        assert point.wcet.wcet >= point.sim.cycles
        assert point.ratio > 1.0
        row = point.row()
        assert row["config"] == "spm256"

    def test_cache_point_fields(self, adpcm_workflow):
        point = adpcm_workflow.cache_point(CacheConfig(size=256))
        assert point.sim.cache_stats is not None
        assert point.wcet.wcet >= point.sim.cycles

    def test_bigger_spm_never_slower(self, adpcm_workflow):
        small = adpcm_workflow.spm_point(64)
        big = adpcm_workflow.spm_point(4096)
        assert big.sim.cycles <= small.sim.cycles
        assert big.wcet.wcet <= small.wcet.wcet

    def test_allocation_methods(self, adpcm_workflow):
        energy = adpcm_workflow.allocate(512, method="energy")
        wcet = adpcm_workflow.allocate(512, method="wcet")
        assert energy.method == "ilp"
        assert wcet.method == "wcet"
        with pytest.raises(ValueError):
            adpcm_workflow.allocate(512, method="nope")


class TestTables:
    def test_table1_exact_paper_values(self):
        rows = table1.run()["rows"]
        by_width = {r["access_width"]: r for r in rows}
        assert by_width["Byte (8 Bit)"]["main_memory"] == 2
        assert by_width["Halfword (16 Bit)"]["main_memory"] == 2
        assert by_width["Word (32 Bit)"]["main_memory"] == 4
        assert all(r["scratchpad"] == 1 for r in rows)

    def test_table2_rows(self):
        result = table2.run(fast=True)
        names = [r["name"] for r in result["rows"]]
        assert names == ["G.721", "ADPCM", "MultiSort"]


class TestFigures:
    def test_fig2_annotation_artifact(self):
        result = fig2_annotations.run()
        assert "# Scratchpad" in result["text"]
        assert result["rows"][0]["areas"] > 5
        assert result["rows"][0]["loop_bounds"] > 3

    def test_fig3_shapes(self):
        result = fig3_g721.run(fast=True)
        spm = result["spm"]
        cache = result["cache"]
        # SPM: sim and WCET decrease together (parallel curves).
        assert spm[-1]["sim_cycles"] < spm[0]["sim_cycles"]
        assert spm[-1]["wcet_cycles"] < spm[0]["wcet_cycles"]
        # Cache: sim drops sharply; WCET stays within a small factor of
        # its small-cache level ("stays at a very high level").
        assert cache[-1]["sim_cycles"] < cache[0]["sim_cycles"] / 2
        assert cache[-1]["wcet_cycles"] > cache[0]["wcet_cycles"] / 2

    def test_fig4_ratio_shapes(self):
        result = fig4_ratio_g721.run(fast=True)
        rows = result["rows"]
        spm_ratios = [r["spm_ratio"] for r in rows]
        cache_ratios = [r["cache_ratio"] for r in rows]
        # Paper: SPM ratio roughly constant; cache ratio grows.
        assert max(spm_ratios) / min(spm_ratios) < 1.25
        assert cache_ratios[-1] > cache_ratios[0] * 2
        assert all(c > s for s, c in zip(spm_ratios, cache_ratios))

    def test_fig5_multisort_ratios(self):
        result = fig5_ratio_multisort.run(fast=True)
        rows = result["rows"]
        spm_ratios = [r["spm_ratio"] for r in rows]
        assert max(spm_ratios) / min(spm_ratios) < 1.25
        assert rows[-1]["cache_ratio"] > rows[0]["cache_ratio"]

    def test_fig6_adpcm_small_cache_degradation(self):
        result = fig6_adpcm.run(fast=True)
        spm = result["spm"]
        cache = result["cache"]
        # Small cache much slower than small SPM in absolute terms.
        assert cache[0]["sim_cycles"] > 1.5 * spm[0]["sim_cycles"]
        # ADPCM deviation low on SPM (mostly critical path).
        assert all(r["ratio"] < 1.5 for r in spm)

    def test_worstcase_sort_tight(self):
        result = xtra_worstcase_sort.run()
        assert result["rows"][0]["gap_percent"] < 3.0


class TestAblations:
    def test_icache_ratio_beats_unified(self):
        result = ablation_cacheconfig.run(fast=True)
        for row in result["rows"]:
            assert row["icache_dm_ratio"] <= row["unified_dm_ratio"]

    def test_persistence_tightens_but_spm_wins(self):
        result = ablation_persistence.run(fast=True)
        for row in result["rows"]:
            assert row["cache_wcet_persist"] <= row["cache_wcet_must"]
            assert row["spm_wcet"] < row["cache_wcet_persist"]

    def test_wcet_driven_allocation_not_worse(self):
        result = ablation_wcet_alloc.run(fast=True)
        for row in result["rows"]:
            # The WCET-driven knapsack targets the bound directly; it
            # should never lose badly to the energy objective.
            assert row["wcet_wcet_alloc"] <= row["wcet_energy_alloc"] * 1.05
