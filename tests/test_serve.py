"""The analysis-as-a-service daemon (PR 9).

The serving invariant mirrors the resilience suite's: **anything the
daemon answers is byte-identical to evaluating the same request
directly**, whatever path produced it — freshly computed, coalesced
onto an in-flight twin, served from the memo, retried past a killed
worker, or resent across an injected transport fault.  Around that
sit the robustness behaviours ISSUE 9 pins down: request dedup,
bounded admission with backpressure, per-waiter deadlines with
copy-pasteable repro commands, supervised worker recovery, and
graceful SIGTERM drain.

Most tests run the daemon in-process (:class:`ServeDaemon` is
embeddable); the drain test and the load-generator test exercise the
real ``repro-serve`` / ``repro-serve-load`` entry points as
subprocesses.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.serve.client import ServeClient, ServeError, ServeTransportError
from repro.serve.daemon import ServeDaemon
from repro.serve.protocol import (
    ProtocolError,
    canonical_request,
    decode,
    encode,
    repro_command,
    request_key,
)
from repro.serve.worker import evaluate_request, rerun_request
from repro.testing.faults import reset_fault_counters

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")

TINY_SOURCE = """
int main(void) {
    int i; int acc = 0;
    for (i = 0; i < 16; i = i + 1) acc = acc + i;
    return acc & 255;
}
"""


@pytest.fixture(autouse=True)
def _no_leftover_faults(monkeypatch):
    monkeypatch.delenv("REPRO_FAULT_STORE_WRITE", raising=False)
    monkeypatch.delenv("REPRO_FAULT_UNIT", raising=False)
    monkeypatch.delenv("REPRO_FAULT_SERVE", raising=False)
    monkeypatch.delenv("REPRO_FAULT_NET", raising=False)
    reset_fault_counters()
    yield
    reset_fault_counters()


@pytest.fixture
def daemon_factory(tmp_path):
    daemons = []

    def make(**kwargs):
        kwargs.setdefault("workers", 2)
        kwargs.setdefault("cache_dir", None)
        daemon = ServeDaemon(
            str(tmp_path / f"d{len(daemons)}.sock"), **kwargs)
        daemon.start()
        daemons.append(daemon)
        return daemon

    yield make
    for daemon in daemons:
        daemon.drain(timeout=10.0)


# --------------------------------------------------------------------------
# Protocol: canonicalisation, request identity, validation
# --------------------------------------------------------------------------

class TestProtocol:
    def test_defaults_fill_in(self):
        bare = canonical_request({"op": "simulate", "bench": "crc"})
        explicit = canonical_request(
            {"op": "simulate", "bench": "crc", "config": {},
             "id": "x", "deadline": 5.0})
        assert bare == explicit
        assert request_key(bare) == request_key(explicit)
        assert "id" not in bare and "deadline" not in bare

    def test_non_default_config_changes_key(self):
        small = canonical_request(
            {"op": "wcet", "bench": "crc", "config": {"cache": 256}})
        big = canonical_request(
            {"op": "wcet", "bench": "crc", "config": {"cache": 512}})
        assert small["config"] == {"cache": 256}
        assert request_key(small) != request_key(big)

    def test_source_keyed_by_sha(self):
        canonical = canonical_request(
            {"op": "compile", "source": TINY_SOURCE})
        assert canonical["source"] == TINY_SOURCE
        key = request_key(canonical)
        assert TINY_SOURCE not in key
        assert "source_sha256" in key
        again = canonical_request(
            {"op": "compile", "source": TINY_SOURCE})
        assert request_key(again) == key

    @pytest.mark.parametrize("request_", [
        {"op": "explode"},
        {"op": "simulate"},                                # no target
        {"op": "simulate", "bench": "crc", "source": "x"},  # both
        {"op": "simulate", "bench": "no-such-bench"},
        {"op": "simulate", "bench": "gen:notanumber"},
        {"op": "wcet", "bench": "crc", "config": {"nope": 1}},
        {"op": "wcet", "bench": "crc", "config": {"alloc": "magic"}},
        {"op": "wcet", "bench": "crc", "config": {"cache": -4}},
        {"op": "wcet", "bench": "crc",
         "config": {"spm": 256, "l2": 1024}},              # unservable
        {"op": "sweep", "bench": "crc", "sizes": []},
        {"op": "sweep", "bench": "crc", "sizes": [100]},   # not 2^n
        {"op": "grid", "bench": "crc", "sizes": [256]},    # no assocs
        {"op": "sleep", "seconds": -1},
        {"op": "sleep", "seconds": 1e9},
    ])
    def test_malformed_requests_rejected(self, request_):
        with pytest.raises(ProtocolError):
            canonical_request(request_)

    def test_wire_roundtrip(self):
        message = {"op": "ping", "id": 7}
        assert decode(encode(message)) == message
        with pytest.raises(ProtocolError):
            decode(b"\x00<<not-json>>\xff\n")
        with pytest.raises(ProtocolError):
            decode(b"[1,2,3]\n")

    def test_repro_command_reruns_the_request(self, capsys):
        canonical = canonical_request({"op": "sleep", "seconds": 0})
        command = repro_command(canonical)
        assert "rerun_request" in command
        assert "PYTHONPATH=src" in command
        rerun_request(json.dumps(canonical))
        printed = json.loads(capsys.readouterr().out)
        assert printed == evaluate_request(canonical)


# --------------------------------------------------------------------------
# The daemon in-process: dedup, backpressure, deadlines, recovery
# --------------------------------------------------------------------------

class TestServeDaemon:
    def test_ping_and_stats_inline(self, daemon_factory):
        daemon = daemon_factory(workers=1)
        with ServeClient(daemon.socket_path) as client:
            ping = client.ping()
            assert ping["protocol"] == 1
            stats = client.stats()
        assert stats["workers"] == 1
        assert stats["counters"]["requests"] >= 2
        assert stats["counters"]["computed"] == 0  # inline ops only

    def test_identical_concurrent_requests_compute_once(
            self, daemon_factory):
        daemon = daemon_factory(workers=2)
        responses = []

        def one_request():
            with ServeClient(daemon.socket_path) as client:
                responses.append(
                    client.response("sleep", seconds=0.4))

        threads = [threading.Thread(target=one_request)
                   for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30)
        assert len(responses) == 6
        assert all(r["ok"] for r in responses)
        assert all(r["result"] == {"slept": 0.4} for r in responses)
        served = sorted(r["served"] for r in responses)
        assert served.count("computed") == 1
        assert daemon.counters["computed"] == 1
        assert (daemon.counters["coalesced"]
                + daemon.counters["memo_hits"]) == 5
        # A latecomer is answered from the bounded memo.
        with ServeClient(daemon.socket_path) as client:
            late = client.response("sleep", seconds=0.4)
        assert late["served"] == "memo"
        assert late["result"] == responses[0]["result"]

    def test_backpressure_sheds_when_queue_full(self, daemon_factory):
        daemon = daemon_factory(workers=1, queue_depth=1,
                                retry_after=0.2)
        occupier = threading.Thread(
            target=lambda: ServeClient(daemon.socket_path)
            .call("sleep", seconds=1.0))
        occupier.start()
        deadline = time.monotonic() + 5.0
        while not daemon.counters["computed"]:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        with ServeClient(daemon.socket_path,
                         retry_overloaded=False) as client:
            with pytest.raises(ServeError) as shed:
                client.call("sleep", seconds=0.9)
        assert shed.value.kind == "overloaded"
        assert shed.value.retry_after == 0.2
        assert daemon.counters["sheds"] == 1
        occupier.join(30)
        # With retry_overloaded on, the same request eventually lands.
        with ServeClient(daemon.socket_path) as client:
            assert client.call("sleep", seconds=0.9) == {"slept": 0.9}

    def test_deadline_expires_waiter_not_work(self, daemon_factory):
        daemon = daemon_factory(workers=1)
        with ServeClient(daemon.socket_path) as client:
            with pytest.raises(ServeError) as expired:
                client.call("sleep", seconds=1.0, deadline=0.2)
            assert expired.value.kind == "deadline"
            assert "rerun_request" in expired.value.repro
            # The computation kept running; a patient waiter gets it.
            patient = client.response("sleep", seconds=1.0)
        assert patient["ok"]
        assert patient["served"] in ("coalesced", "memo")
        assert daemon.counters["deadline_expired"] == 1
        assert daemon.counters["computed"] == 1

    def test_invalid_deadline_rejected(self, daemon_factory):
        daemon = daemon_factory(workers=1)
        with ServeClient(daemon.socket_path) as client:
            with pytest.raises(ServeError) as rejected:
                client.call("sleep", seconds=0, deadline="soon")
        assert rejected.value.kind == "invalid"

    def test_invalid_request_never_queued(self, daemon_factory):
        daemon = daemon_factory(workers=1)
        with ServeClient(daemon.socket_path) as client:
            with pytest.raises(ServeError) as rejected:
                client.call("simulate", bench="no-such-bench")
        assert rejected.value.kind == "invalid"
        assert daemon.counters["invalid"] == 1
        assert daemon.counters["computed"] == 0

    def test_worker_crash_recovers_and_answers(
            self, daemon_factory, tmp_path, monkeypatch):
        # The first unit any worker runs kills that worker outright
        # (at most once globally); supervision must rebuild the pool,
        # re-run the unit, and still answer this request correctly.
        monkeypatch.setenv(
            "REPRO_FAULT_UNIT",
            f"crash@1@{tmp_path / 'crash.once'}")
        daemon = daemon_factory(workers=2)
        with ServeClient(daemon.socket_path) as client:
            assert client.call("sleep", seconds=0.1) == {"slept": 0.1}
        supervisor = daemon.stats()["supervisor"]
        assert supervisor["crashes"] >= 1
        assert supervisor["rebuilds"] >= 1
        assert daemon.counters["ok"] >= 1

    def test_failed_unit_reports_attempts_and_repro(
            self, daemon_factory, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_UNIT", "raise@1+")
        daemon = daemon_factory(workers=1, retries=1, backoff=0.01)
        with ServeClient(daemon.socket_path) as client:
            with pytest.raises(ServeError) as failed:
                client.call("sleep", seconds=0)
        assert failed.value.kind == "failed"
        assert failed.value.attempts == 2  # one try + one retry
        assert "rerun_request" in failed.value.repro
        assert daemon.counters["failed"] == 1

    def test_live_socket_is_not_stolen(self, daemon_factory):
        daemon = daemon_factory(workers=1)
        usurper = ServeDaemon(daemon.socket_path, workers=1)
        with pytest.raises(RuntimeError, match="live daemon"):
            usurper.start()
        # The original daemon is unharmed.
        with ServeClient(daemon.socket_path) as client:
            assert client.ping()["protocol"] == 1


# --------------------------------------------------------------------------
# Injected transport faults: the client survives the daemon's worst
# --------------------------------------------------------------------------

class TestServeTransportFaults:
    def test_garbage_lines_are_skipped(self, daemon_factory,
                                       monkeypatch):
        daemon = daemon_factory(workers=1)
        monkeypatch.setenv("REPRO_FAULT_SERVE", "garbage@1+")
        with ServeClient(daemon.socket_path) as client:
            for _ in range(3):
                assert client.call("sleep", seconds=0) == {"slept": 0.0}

    def test_dropped_response_resends_and_coalesces(
            self, daemon_factory, monkeypatch):
        daemon = daemon_factory(workers=1)
        monkeypatch.setenv("REPRO_FAULT_SERVE", "drop@1")
        with ServeClient(daemon.socket_path) as client:
            assert client.call("sleep", seconds=0.3) == {"slept": 0.3}
        # The resend after EOF found the first attempt's computation.
        assert daemon.counters["computed"] == 1
        assert (daemon.counters["coalesced"]
                + daemon.counters["memo_hits"]) >= 1

    def test_unreachable_daemon_raises_transport_error(self, tmp_path):
        client = ServeClient(str(tmp_path / "nobody.sock"))
        with pytest.raises(ServeTransportError):
            client.ping()


# --------------------------------------------------------------------------
# Served answers are byte-identical to direct Workflow evaluation
# --------------------------------------------------------------------------

class TestServedEqualsDirect:
    def test_wcet_simulate_compile_match_direct(self, daemon_factory):
        from repro.experiments.common import workflow_for
        from repro.serve.protocol import system_config

        daemon = daemon_factory(workers=2, warm=("crc",))
        requests = [
            {"op": "compile", "bench": "crc"},
            {"op": "simulate", "bench": "crc"},
            {"op": "wcet", "bench": "crc", "config": {"cache": 256}},
            {"op": "compile", "source": TINY_SOURCE},
        ]
        with ServeClient(daemon.socket_path) as client:
            served = [client.call(r["op"], **{k: v
                                              for k, v in r.items()
                                              if k != "op"})
                      for r in requests]
        direct = [evaluate_request(canonical_request(r))
                  for r in requests]
        for request, got, want in zip(requests, served, direct):
            assert (json.dumps(got, sort_keys=True)
                    == json.dumps(want, sort_keys=True)), request
        # And against the Workflow API itself, not just the worker's
        # wrapping of it.
        workflow = workflow_for("crc")
        assert served[0] == {
            "content_key": workflow.baseline_image().content_key()}
        point = workflow.config_point(
            system_config({"cache": 256}), False)
        assert served[2] == point.row()

    def test_sweep_and_grid_match_direct(self, daemon_factory):
        daemon = daemon_factory(workers=2, warm=("crc",))
        requests = [
            {"op": "sweep", "bench": "crc", "sizes": [128, 256]},
            {"op": "grid", "bench": "crc", "sizes": [128, 256],
             "assocs": [1, 2]},
        ]
        with ServeClient(daemon.socket_path) as client:
            served = [client.call(r["op"], **{k: v
                                              for k, v in r.items()
                                              if k != "op"})
                      for r in requests]
        for request, got in zip(requests, served):
            want = evaluate_request(canonical_request(request))
            assert (json.dumps(got, sort_keys=True)
                    == json.dumps(want, sort_keys=True)), request


# --------------------------------------------------------------------------
# The real entry points: SIGTERM drain + the load generator
# --------------------------------------------------------------------------

def _spawn_serve_cli(socket_path, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.serve.cli",
         "--socket", str(socket_path), "--workers", "1",
         "--cache-dir", "none", *extra],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env)
    client = ServeClient(str(socket_path), timeout=30.0)
    deadline = time.monotonic() + 60.0
    while True:
        try:
            client.ping()
            return process, client
        except (ServeTransportError, OSError):
            if (process.poll() is not None
                    or time.monotonic() > deadline):
                process.kill()
                raise RuntimeError(
                    f"daemon never came up: {process.stdout.read()}")
            time.sleep(0.05)


class TestSigtermDrain:
    def test_sigterm_drains_inflight_and_exits_zero(self, tmp_path):
        process, client = _spawn_serve_cli(tmp_path / "drain.sock")
        try:
            inflight = {}

            def slow_request():
                inflight["response"] = client.response(
                    "sleep", seconds=1.5)

            waiter = threading.Thread(target=slow_request)
            waiter.start()
            # Make sure the request is admitted before the signal.
            probe = ServeClient(str(tmp_path / "drain.sock"))
            deadline = time.monotonic() + 10.0
            while not probe.stats()["counters"]["computed"]:
                assert time.monotonic() < deadline
                time.sleep(0.05)
            probe.close()
            process.send_signal(signal.SIGTERM)
            waiter.join(30)
            # The in-flight request was answered, not abandoned.
            assert inflight["response"]["ok"]
            assert inflight["response"]["result"] == {"slept": 1.5}
            assert process.wait(timeout=30) == 0
        finally:
            client.close()
            if process.poll() is None:
                process.kill()
        output = process.stdout.read()
        assert "repro-serve: draining" in output
        assert "final stats" in output
        # The socket was removed on the way out.
        assert not os.path.exists(tmp_path / "drain.sock")


class TestLoadGenerator:
    def test_quick_load_with_faults_verifies_and_drains(
            self, monkeypatch):
        # The CI smoke in miniature: a fault-slice load run whose every
        # response must verify byte-identical to direct evaluation.
        from repro.serve import loadgen
        monkeypatch.setenv("REPRO_FAULT_SERVE", "garbage@5+")
        args = loadgen.build_parser().parse_args(
            ["--requests", "30", "--clients", "3", "--benches", "crc",
             "--workers", "2", "--seed", "99"])
        exit_code, metrics, failures = loadgen.run_load(args)
        assert failures == []
        assert exit_code == 0
        assert metrics["ok"] == 30
        assert metrics["daemon_exit_code"] == 0
        assert metrics["distinct_keys_verified"] >= 1
