"""End-to-end execution semantics of compiled mini-C.

Every test compiles a program, runs it on the simulator and checks the
result against C semantics (computed in Python).  The hypothesis fuzzer at
the bottom generates random expressions and cross-checks compiled results
against a Python evaluator with 32-bit C semantics — a broad oracle over
lexer, parser, sema, codegen, assembler, linker and simulator at once.
"""

import pytest
from hypothesis import given, settings, strategies as st

from .helpers import expr_value, returns, run_main


def s32(value):
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value & 0x80000000 else value


class TestArithmetic:
    def test_basics(self):
        assert expr_value("1 + 2 * 3") == 7
        assert expr_value("(1 + 2) * 3") == 9
        assert expr_value("10 - 20") == -10
        assert expr_value("6 * 7") == 42

    def test_division_signs(self):
        # Runtime division must truncate toward zero like C.
        prelude = "int n; int d;"
        for a, b in [(7, 2), (-7, 2), (7, -2), (-7, -2), (1, 7),
                     (0, 5), (-2147483647, 3)]:
            value = expr_value(f"n / d", prelude +
                               f"""
                               void setup(void) {{ n = {a}; d = {b}; }}
                               """ if False else f"""
                               int n = {a}; int d = {b};
                               """)
            assert value == int(a / b), (a, b)

    def test_modulo_signs(self):
        for a, b in [(7, 3), (-7, 3), (7, -3), (-7, -3)]:
            value = expr_value("n % d", f"int n = {a}; int d = {b};")
            assert value == a - b * int(a / b), (a, b)

    def test_unsigned_division(self):
        value = expr_value("a / b",
                           "unsigned a = 0x80000000u; unsigned b = 3u;")
        assert value == s32(0x80000000 // 3)

    def test_shifts(self):
        assert expr_value("1 << 20") == 1 << 20
        assert expr_value("x >> 3", "int x = -64;") == -8   # arithmetic
        assert expr_value("x >> 3", "unsigned x = 0x80000000u;") == \
            s32(0x80000000 >> 3)                            # logical

    def test_bitwise(self):
        assert expr_value("(0x0F0F & 0x00FF) | 0x1000") == 0x100F
        assert expr_value("0x0F ^ 0xFF") == 0xF0
        assert expr_value("~0") == -1

    def test_unary(self):
        assert expr_value("-x", "int x = 5;") == -5
        assert expr_value("!x", "int x = 5;") == 0
        assert expr_value("!x", "int x = 0;") == 1

    def test_wraparound(self):
        assert expr_value("x + 1", "int x = 2147483647;") == -2147483648
        assert expr_value("x * x", "int x = 65536;") == 0

    def test_large_constants(self):
        assert expr_value("305419896") == 305419896        # pool literal
        assert expr_value("x", "int x = -305419896;") == -305419896
        assert expr_value("513") == 513                    # 16-bit synth
        assert expr_value("65535") == 65535
        assert expr_value("x", "int x = -65535;") == -65535


class TestComparisons:
    def test_signed(self):
        assert expr_value("a < b", "int a = -1; int b = 0;") == 1
        assert expr_value("a > b", "int a = -1; int b = 0;") == 0
        assert expr_value("a <= a", "int a = 7;") == 1
        assert expr_value("a >= b", "int a = 3; int b = 4;") == 0

    def test_unsigned(self):
        prelude = "unsigned a = 0xFFFFFFFFu; unsigned b = 0u;"
        assert expr_value("a < b", prelude) == 0
        assert expr_value("a > b", prelude) == 1

    def test_mixed_signedness_is_unsigned(self):
        # -1 compared against unsigned 0 behaves as 0xFFFFFFFF.
        assert expr_value("a < b", "int a = -1; unsigned b = 0u;") == 0

    def test_equality(self):
        assert expr_value("a == b", "int a = -5; int b = -5;") == 1
        assert expr_value("a != b", "int a = 1; int b = 2;") == 1


class TestLogicalAndControl:
    def test_short_circuit_and(self):
        source = """
        int calls;
        int bump(void) { calls = calls + 1; return 1; }
        int main(void) {
            calls = 0;
            if (0 && bump()) { }
            return calls;
        }
        """
        assert returns(source) == 0

    def test_short_circuit_or(self):
        source = """
        int calls;
        int bump(void) { calls = calls + 1; return 0; }
        int main(void) {
            calls = 0;
            if (1 || bump()) { }
            return calls;
        }
        """
        assert returns(source) == 0

    def test_logical_as_value(self):
        assert expr_value("(a && b) + (a || c)",
                          "int a = 3; int b = 0; int c = 2;") == 1

    def test_ternary(self):
        assert expr_value("a ? 10 : 20", "int a = 1;") == 10
        assert expr_value("a ? 10 : 20", "int a = 0;") == 20

    def test_nested_if_else(self):
        source = """
        int classify(int x) {
            if (x < 0) { return -1; }
            else if (x == 0) { return 0; }
            else if (x < 10) { return 1; }
            return 2;
        }
        int main(void) {
            return classify(-5) + 1 + (classify(0) + 1) * 10
                 + (classify(5) + 1) * 100 + classify(50) * 1000;
        }
        """
        assert returns(source) == 0 + 10 + 200 + 2000

    def test_loops(self):
        source = """
        int main(void) {
            int total = 0;
            int i = 0;
            while (i < 5) { total += i; i++; }
            do { total += 100; } while (0);
            for (i = 10; i > 0; i -= 3) { total += 1; }
            return total;
        }
        """
        assert returns(source) == 10 + 100 + 4

    def test_break_continue(self):
        source = """
        int main(void) {
            int total = 0;
            int i;
            for (i = 0; i < 10; i++) {
                if (i == 3) { continue; }
                if (i == 6) { break; }
                total += i;
            }
            return total;
        }
        """
        assert returns(source) == 0 + 1 + 2 + 4 + 5


class TestDataTypes:
    def test_short_sign_extension(self):
        assert expr_value("s", "short s = -100;") == -100
        assert expr_value("s", "short s = 70000;") == s32(70000 & 0xFFFF
                                                          | (0xFFFF0000 if
                                                             70000 & 0x8000
                                                             else 0))

    def test_char_zero_extension(self):
        assert expr_value("c", "char c = 200;") == 200
        assert expr_value("c", "char c = 300;") == 300 & 0xFF

    def test_short_array_roundtrip(self):
        source = """
        short vals[4];
        int main(void) {
            vals[0] = -1000;
            vals[1] = 1000;
            vals[2] = (short)70000;
            return (vals[0] == -1000) + (vals[1] == 1000) * 2
                 + (vals[2] == 4464) * 4;
        }
        """
        assert returns(source) == 7

    def test_char_array(self):
        source = """
        char bytes[8];
        int main(void) {
            int i;
            for (i = 0; i < 8; i++) { bytes[i] = (char)(250 + i); }
            return bytes[0] + bytes[7];
        }
        """
        assert returns(source) == ((250 + 257 % 256)) & 0xFF

    def test_casts(self):
        assert expr_value("(char)x", "int x = 0x1FF;") == 0xFF
        assert expr_value("(short)x", "int x = 0x18000;") == -32768
        assert expr_value("(int)(unsigned)x", "int x = -1;") == -1

    def test_global_scalar_init(self):
        assert expr_value("g", "int g = -12345;") == -12345
        assert expr_value("g", "short g = -42;") == -42

    def test_const_table(self):
        source = """
        const int table[5] = {10, 20, 30, 40, 50};
        int main(void) {
            int i;
            int total = 0;
            for (i = 0; i < 5; i++) { total += table[i]; }
            return total;
        }
        """
        assert returns(source) == 150

    def test_partial_array_init_zero_fill(self):
        source = """
        int t[6] = {1, 2};
        int main(void) { return t[0] + t[1] + t[5]; }
        """
        assert returns(source) == 3


class TestFunctions:
    def test_recursion_simulates(self):
        # WCET rejects recursion, but the simulator runs it fine.
        source = """
        int fact(int n) {
            if (n <= 1) { return 1; }
            return n * fact(n - 1);
        }
        int main(void) { return fact(6); }
        """
        assert returns(source) == 720

    def test_many_arguments_stack_passing(self):
        source = """
        int sum8(int a, int b, int c, int d, int e, int f, int g, int h) {
            return a + b * 2 + c * 4 + d * 8 + e * 16 + f * 32
                 + g * 64 + h * 128;
        }
        int main(void) {
            return sum8(1, 1, 1, 1, 1, 1, 1, 0) & 255;
        }
        """
        assert returns(source) == 127

    def test_five_args(self):
        source = """
        int pick(int a, int b, int c, int d, int e) { return e; }
        int main(void) { return pick(1, 2, 3, 4, 5); }
        """
        assert returns(source) == 5

    def test_nested_calls_in_expressions(self):
        source = """
        int add(int a, int b) { return a + b; }
        int main(void) {
            return add(add(1, 2), add(add(3, 4), 5));
        }
        """
        assert returns(source) == 15

    def test_pointer_parameters(self):
        source = """
        int a[4] = {1, 2, 3, 4};
        short b[4] = {10, 20, 30, 40};
        int sum_int(int p[], int n) {
            int i; int t = 0;
            for (i = 0; i < n; i++) { t += p[i]; }
            return t;
        }
        int sum_short(short p[], int n) {
            int i; int t = 0;
            for (i = 0; i < n; i++) { t += p[i]; }
            return t;
        }
        int main(void) { return sum_int(a, 4) + sum_short(b, 4); }
        """
        assert returns(source) == 10 + 100

    def test_void_function_call(self):
        source = """
        int counter;
        void tick(void) { counter = counter + 1; }
        int main(void) {
            counter = 0;
            tick(); tick(); tick();
            return counter;
        }
        """
        assert returns(source) == 3

    def test_builtin_print(self):
        result = run_main("""
        int main(void) {
            __print_int(-42);
            __print_char('A');
            return 0;
        }
        """)
        assert result.console == ["-42", "A"]


class TestAssignment:
    def test_assignment_value_narrows(self):
        source = """
        short s;
        int main(void) { return (s = (short)40000) == -25536; }
        """
        assert returns(source) == 1

    def test_compound_operators(self):
        source = """
        int main(void) {
            int x = 100;
            x += 10; x -= 5; x *= 2; x /= 3; x %= 50;
            x <<= 2; x >>= 1; x &= 0xFF; x |= 0x100; x ^= 0x10;
            return x;
        }
        """
        x = 100
        x += 10; x -= 5; x *= 2; x //= 3; x %= 50
        x <<= 2; x >>= 1; x &= 0xFF; x |= 0x100; x ^= 0x10
        assert returns(source) == x

    def test_array_element_update(self):
        source = """
        int t[3];
        int main(void) {
            t[1] = 5;
            t[1] += 10;
            t[1]++;
            return t[1];
        }
        """
        assert returns(source) == 16


# -- hypothesis: random expression fuzzing -------------------------------------

_VAR_VALUES = {"va": 17, "vb": -9, "vc": 123456, "vd": -3}


@st.composite
def c_expression(draw, depth=0):
    """Random mini-C int expression with its Python value."""
    if depth >= 3 or draw(st.booleans()):
        choice = draw(st.integers(0, 1))
        if choice == 0:
            value = draw(st.integers(-1000, 1000))
            return f"({value})", value
        name = draw(st.sampled_from(sorted(_VAR_VALUES)))
        return name, _VAR_VALUES[name]
    op = draw(st.sampled_from(
        ["+", "-", "*", "&", "|", "^", "<<", ">>", "<", ">", "==", "!="]))
    left_text, left_val = draw(c_expression(depth=depth + 1))
    right_text, right_val = draw(c_expression(depth=depth + 1))
    if op == "<<" or op == ">>":
        shift = draw(st.integers(0, 31))
        right_text, right_val = str(shift), shift
    text = f"({left_text} {op} {right_text})"
    a, b = left_val, right_val
    if op == "+":
        value = s32(a + b)
    elif op == "-":
        value = s32(a - b)
    elif op == "*":
        value = s32(a * b)
    elif op == "&":
        value = s32(a & b)
    elif op == "|":
        value = s32(a | b)
    elif op == "^":
        value = s32(a ^ b)
    elif op == "<<":
        value = s32(a << b)
    elif op == ">>":
        value = a >> b  # both operands signed here: arithmetic shift
    elif op == "<":
        value = 1 if a < b else 0
    elif op == ">":
        value = 1 if a > b else 0
    elif op == "==":
        value = 1 if a == b else 0
    else:
        value = 1 if a != b else 0
    return text, value


@settings(max_examples=40, deadline=None)
@given(c_expression())
def test_random_expressions_match_python(expr):
    text, expected = expr
    prelude = "".join(f"int {name} = {value};\n"
                      for name, value in _VAR_VALUES.items())
    assert expr_value(text, prelude) == expected
