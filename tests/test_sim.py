"""Simulator: syscalls, faults, cycle accounting, profiling."""

import pytest

from repro.isa import Label
from repro.isa import instruction as ins
from repro.isa.assembler import Align, WordRef
from repro.isa.opcodes import Op
from repro.link import FunctionCode, Program, link
from repro.memory import CacheConfig, SystemConfig
from repro.memory.regions import MAIN_BASE, STACK_TOP
from repro.sim import MemoryFault, SimError, Simulator, simulate
from repro.sim.profile import build_profile

from .helpers import run_main


def program_of(items_lists, globals_=()):
    functions = [FunctionCode(name, items)
                 for name, items in items_lists.items()]
    return Program(functions=functions, globals=list(globals_))


def run_items(items, config=None, **kwargs):
    program = program_of({"_start": [Label("_start")] + items})
    image = link(program)
    return simulate(image, config or SystemConfig.uncached(), **kwargs)


class TestExecution:
    def test_exit_code_from_r0(self):
        result = run_items([ins.movi(0, 99), ins.swi(0)])
        assert result.exit_code == 99

    def test_console_syscalls(self):
        result = run_items([
            ins.movi(0, 65), ins.swi(2),     # putchar 'A'
            ins.movi(0, 123), ins.swi(1),    # print 123
            ins.swi(0),
        ])
        assert result.console == ["A", "123"]

    def test_unknown_swi_faults(self):
        with pytest.raises(SimError):
            run_items([ins.swi(9)])

    def test_runaway_detection(self):
        items = [Label("spin"), ins.b("spin")]
        program = program_of({"_start": [Label("_start")] + items})
        image = link(program)
        with pytest.raises(SimError):
            simulate(image, SystemConfig.uncached(), max_steps=100)

    def test_pc_escape_detected(self):
        # bx into the data region: no decoded instruction lives there.
        items = [ins.movi(1, 16), ins.shift_i(Op.LSLI, 1, 1, 16),
                 ins.bx(1)]
        with pytest.raises(SimError):
            run_items(items)


class TestMemoryFaults:
    def test_unaligned_word_access(self):
        items = [
            ins.movi(1, 2),          # address 2 (not 4-aligned)
            ins.mem_i(Op.LDRWI, 0, 1, 0),
        ]
        with pytest.raises(MemoryFault):
            run_items(items)

    def test_unmapped_hole_access(self):
        items = [
            ins.movi(1, 255), ins.shift_i(Op.LSLI, 1, 1, 8),  # 0xFF00
            ins.mem_i(Op.LDRWI, 0, 1, 0),
        ]
        with pytest.raises(MemoryFault):
            run_items(items)


class TestCycleAccounting:
    def test_hand_counted_straightline(self):
        # movi(fetch 2) + movi(2) + swi(2 + 2 extra) = 8 cycles uncached.
        result = run_items([ins.movi(0, 1), ins.movi(1, 2), ins.swi(0)])
        assert result.cycles == 8

    def test_branch_refill_charged(self):
        # b(2+2) + target swi(2+2) + movi skipped.
        result = run_items([
            ins.b("over"), ins.movi(0, 1), Label("over"), ins.swi(0)])
        assert result.cycles == (2 + 2) + (2 + 2)

    def test_load_cost_by_width(self):
        from repro.link import DataObject
        glob = DataObject("g", payload=(123).to_bytes(4, "little"))
        program = program_of(
            {"_start": [
                Label("_start"),
                ins.ldr_pc(1, target="pool"),
                ins.mem_i(Op.LDRWI, 0, 1, 0),
                ins.swi(0),
                Label("pool"),
            ]},
        )
        # Append a WordRef pool entry manually.
        program.functions[0].items.append(Align(4))
        program.functions[0].items.append(Label("poolw"))
        program.functions[0].items.append(WordRef("g"))
        # Fix the ldrpc target to the pool label.
        program.functions[0].items[1].target = "poolw"
        program.globals.append(glob)
        image = link(program)
        result = simulate(image, SystemConfig.uncached())
        # fetch ldrpc 2 + pool read 4 + fetch ldr 2 + data read 4
        # + swi 2+2 = 16
        assert result.cycles == 16
        assert result.exit_code == 123

    def test_mul_extra_cycles(self):
        result = run_items([
            ins.movi(0, 3), ins.movi(1, 4),
            ins.alu(Op.MUL, 0, 1),
            ins.swi(0)])
        # fetches 4x2 + mul extra 3 + swi extra 2
        assert result.cycles == 8 + 3 + 2
        assert result.exit_code == 12

    def test_push_pop_stack_cost(self):
        result = run_items([
            ins.push((4, 5), lr=False),      # 2 word writes: 8 cycles
            ins.pop((4, 5), pc=False),       # 2 word reads: 8 cycles
            ins.swi(0)])
        assert result.cycles == 2 + 8 + 2 + 8 + 2 + 2

    def test_spm_vs_main_fetch_cycles(self):
        source = """
        int main(void) {
            int i;
            int t = 0;
            for (i = 0; i < 50; i++) { t += i; }
            return t & 255;
        }
        """
        from repro.minic import compile_source
        compiled = compile_source(source)
        everything = {f.name for f in compiled.program.functions}
        everything |= {g.name for g in compiled.program.globals}
        plain = simulate(link(compiled.program),
                         SystemConfig.uncached())
        spm = simulate(
            link(compiled.program, spm_size=4096, spm_objects=everything),
            SystemConfig.scratchpad(4096))
        assert spm.exit_code == plain.exit_code
        assert spm.cycles < plain.cycles


class TestCacheIntegration:
    def test_cache_stats_collected(self):
        result = run_items([ins.movi(0, 0), ins.swi(0)],
                           SystemConfig.cached(CacheConfig(size=64)))
        assert result.cache_stats is not None
        assert result.cache_stats.fetch_misses >= 1

    def test_record_misses(self):
        items = [Label("top"), ins.movi(0, 0)]
        items += [ins.nop()] * 20
        items += [ins.swi(0)]
        program = program_of({"_start": [Label("_start")] + items})
        image = link(program)
        result = simulate(image, SystemConfig.cached(CacheConfig(size=64)),
                          record_misses=True)
        assert sum(result.fetch_misses.values()) == \
            result.cache_stats.fetch_misses


class TestProfile:
    def test_profile_counts(self):
        source = """
        int total;
        int bump(int x) { total = total + x; return total; }
        int main(void) {
            int i;
            for (i = 0; i < 10; i++) { bump(i); }
            return total;
        }
        """
        from repro.minic import compile_source
        compiled = compile_source(source)
        image = link(compiled.program)
        result = simulate(image, SystemConfig.uncached(), profile=True)
        profile = build_profile(image, result)
        assert profile["bump"].accesses > 0
        assert profile["total"].accesses >= 20   # 10 reads + 10 writes
        assert profile["main"].accesses > profile["bump"].accesses / 10

    def test_profile_requires_flag(self):
        result = run_items([ins.swi(0)])
        image = link(program_of({"_start": [Label("_start"),
                                            ins.swi(0)]}))
        with pytest.raises(ValueError):
            build_profile(image, result)

    def test_initial_state(self):
        program = program_of({"_start": [Label("_start"), ins.swi(0)]})
        sim = Simulator(link(program), SystemConfig.uncached())
        assert sim.regs == [0] * 16
        result = sim.run()
        assert result.instructions == 1
