"""The repro-cc command-line front end."""

import pytest

from repro.cli import main

SOURCE = """
int data[16];
int main(void) {
    int i; int t = 0;
    for (i = 0; i < 16; i++) { data[i] = i * 3; }
    for (i = 0; i < 16; i++) { t += data[i]; }
    __print_int(t);
    return t & 255;
}
"""


@pytest.fixture()
def source_file(tmp_path):
    path = tmp_path / "task.c"
    path.write_text(SOURCE)
    return str(path)


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestRun:
    def test_plain(self, source_file, capsys):
        code, out = run_cli(capsys, "run", source_file)
        assert code == 0
        assert "360" in out                 # printed checksum
        assert "# cycles:" in out

    def test_spm(self, source_file, capsys):
        _code, out = run_cli(capsys, "run", source_file, "--spm", "512")
        assert "scratchpad" in out

    def test_cache_stats_printed(self, source_file, capsys):
        _code, out = run_cli(capsys, "run", source_file,
                             "--cache", "256")
        assert "miss rate" in out

    def test_spm_and_cache_conflict(self, source_file, capsys):
        with pytest.raises(SystemExit):
            main(["run", source_file, "--spm", "64", "--cache", "64"])


class TestWcet:
    def test_report(self, source_file, capsys):
        code, out = run_cli(capsys, "wcet", source_file)
        assert code == 0
        assert "WCET(_start)" in out
        assert "stack bound" in out

    def test_cache_classification_line(self, source_file, capsys):
        _code, out = run_cli(capsys, "wcet", source_file,
                             "--cache", "512", "--persistence")
        assert "always-hit" in out

    def test_compare(self, source_file, capsys):
        _code, out = run_cli(capsys, "compare", source_file,
                             "--spm", "256")
        assert "WCET / sim ratio" in out


class TestInspection:
    def test_map(self, source_file, capsys):
        _code, out = run_cli(capsys, "map", source_file)
        assert "data" in out and "main" in out

    def test_disasm(self, source_file, capsys):
        _code, out = run_cli(capsys, "disasm", source_file)
        assert "main:" in out
        assert "push {lr}" in out
        assert "pop {pc}" in out

    def test_annotations(self, source_file, capsys):
        _code, out = run_cli(capsys, "annotations", source_file,
                             "--spm", "128")
        assert "# Scratchpad" in out
        assert "LOOP-BOUND" in out

    def test_wcet_driven_alloc_option(self, source_file, capsys):
        _code, out = run_cli(capsys, "compare", source_file,
                             "--spm", "256", "--alloc", "wcet")
        assert "scratchpad" in out
