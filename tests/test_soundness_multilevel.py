"""WCET soundness across the new hierarchy shapes (satellite property).

For every benchmark in the registry and every config shape the level
pipeline added — hybrid SPM+L1, two-level L1+L2, split I/D — the static
bound must dominate the simulated cycle count, and the memory system
must never change computed values.  This is the multi-level extension
of the paper's core soundness invariant; a violation means simulator
and analyser disagree about the machine.
"""

import pytest

from repro.benchmarks import BENCHMARKS, get
from repro.link import link
from repro.memory import CacheConfig, SystemConfig
from repro.minic import compile_source
from repro.sim import simulate
from repro.wcet import analyze_wcet

L1 = CacheConfig(size=256)
SPM_SIZE = 512


def _greedy_spm_objects(program, capacity):
    """Smallest-first placement (no profiling needed for soundness)."""
    chosen, used = [], 0
    for name, _kind, size in sorted(program.memory_objects(),
                                    key=lambda o: o[2]):
        aligned = (size + 3) & ~3
        if used + aligned <= capacity:
            chosen.append(name)
            used += aligned
    return chosen


@pytest.fixture(scope="module")
def compiled_benchmarks():
    cache = {}

    def compile_benchmark(key):
        if key not in cache:
            cache[key] = compile_source(get(key).source())
        return cache[key]

    return compile_benchmark


def _shapes(program):
    baseline = link(program)
    spm_image = link(program, spm_size=SPM_SIZE,
                     spm_objects=_greedy_spm_objects(program, SPM_SIZE))
    return [
        ("spm+l1", spm_image, SystemConfig.hybrid(SPM_SIZE, L1)),
        ("l1+l2", baseline,
         SystemConfig.two_level(L1, CacheConfig(size=2048))),
        ("split-i/d", baseline,
         SystemConfig.split_l1(CacheConfig(size=256, unified=False),
                               CacheConfig(size=256))),
    ], baseline


@pytest.mark.parametrize("key", sorted(BENCHMARKS))
def test_wcet_dominates_simulation(key, compiled_benchmarks):
    program = compiled_benchmarks(key).program
    shapes, baseline = _shapes(program)
    reference = simulate(baseline, SystemConfig.uncached())
    for label, image, config in shapes:
        sim = simulate(image, config)
        wcet = analyze_wcet(image, config)
        assert wcet.wcet >= sim.cycles, (key, label)
        assert sim.exit_code == reference.exit_code, (key, label)


@pytest.mark.parametrize("key", ["adpcm", "fir"])
def test_l2_absorbs_l1_misses(key, compiled_benchmarks):
    """A large L2 serves a substantial share of the L1's misses (note an
    L2 is *not* guaranteed to make the run faster — a both-level miss
    costs more than a bare L1 miss, so this checks absorption, not
    speed)."""
    program = compiled_benchmarks(key).program
    image = link(program)
    bare = simulate(image, SystemConfig.cached(L1))
    deep = simulate(image,
                    SystemConfig.two_level(L1, CacheConfig(size=4096)))
    l1 = deep.level_stats["L1"]
    l2 = deep.level_stats["L2"]
    assert l1.misses == bare.cache_stats.misses  # same L1 behaviour
    assert l2.fetch_hits + l2.read_hits > 0      # some misses absorbed
    # Every L1 miss went to the L2, never straight to main.
    assert l2.hits + l2.misses >= l1.misses
