"""The fuzz tier: thousands of generated programs through every layer.

Excluded from tier-1 by the ``fuzz`` marker (see ``pytest.ini``); run
explicitly with::

    PYTHONPATH=src python -m pytest -q -m fuzz [tests/test_fuzz_generated.py]

Budget knobs (environment):

* ``FUZZ_EXAMPLES``  — number of seeds for the main sweep
  (default 1000; CI nightly raises it);
* ``FUZZ_BASE_SEED`` — offset the seed range (default 0), so nightly
  runs can explore fresh seeds instead of re-proving old ones.

Every program runs compile → link → execute → self-check → replay
differential → WCET-dominates-simulation across the >= 4 default
hierarchy shapes; subsets additionally run the recording-engine /
per-pc miss differential, the packed-vs-dict abstract-domain
differential, and a greedy SPM placement.  A failure message embeds
``repro-gen --seed N --size S`` — that command alone reproduces the
exact program locally.
"""

import os

import pytest

from repro.gen import (
    check_seed,
    check_spm_placement,
    generate,
)

pytestmark = pytest.mark.fuzz

EXAMPLES = int(os.environ.get("FUZZ_EXAMPLES", "1000"))
BASE_SEED = int(os.environ.get("FUZZ_BASE_SEED", "0"))

#: Seed ranges per size profile: most of the budget goes to small
#: programs (fast, high seed diversity), with medium/large slices for
#: structure that only shows up at scale.
_SMALL = range(BASE_SEED, BASE_SEED + (EXAMPLES * 8) // 10)
_MEDIUM = range(BASE_SEED, BASE_SEED + max((EXAMPLES * 15) // 100, 1))
_LARGE = range(BASE_SEED, BASE_SEED + max(EXAMPLES // 20, 1))


@pytest.mark.parametrize("seed", _SMALL)
def test_small_seed_soundness(seed):
    # Every 8th seed also runs the recording-engine and per-pc
    # fetch-miss-attribution differential (3 engines, not 2).
    check_seed(seed, "small", misses=seed % 8 == 0)


@pytest.mark.parametrize("seed", _MEDIUM)
def test_medium_seed_soundness(seed):
    check_seed(seed, "medium", misses=seed % 4 == 0)


@pytest.mark.parametrize("seed", _LARGE)
def test_large_seed_soundness(seed):
    check_seed(seed, "large")


@pytest.mark.parametrize("seed", range(BASE_SEED,
                                       BASE_SEED + max(EXAMPLES // 25, 1)))
def test_spm_placement_soundness(seed):
    check_spm_placement(generate(seed, "small"),
                        spm_size=128 + (seed % 4) * 128)


@pytest.mark.parametrize("seed", range(BASE_SEED,
                                       BASE_SEED + max(EXAMPLES // 50, 1)))
def test_abstract_domain_differential(seed):
    """Packed bitset vs dict cache domains on generated programs."""
    check_seed(seed, "small", wcet=False, domains=True)
