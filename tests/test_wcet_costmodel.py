"""Cost model and data-access resolution units."""

import pytest

from repro.isa import Op
from repro.isa import instruction as ins
from repro.link import link
from repro.link.objects import AccessNote
from repro.memory import CacheConfig, SystemConfig
from repro.memory.regions import MAIN_BASE, STACK_TOP
from repro.minic import compile_source
from repro.wcet.accesses import resolve_data_access
from repro.wcet.cacheanalysis import AccessClass, AH, CacheAnalysisResult, \
    NC
from repro.wcet.costmodel import CostModel

STACK = (STACK_TOP - 64, STACK_TOP)


def image_for_notes():
    return link(compile_source("""
    int words[8];
    short halves[8];
    int main(void) {
        int i; int t = 0;
        for (i = 0; i < 8; i++) { t += words[i] + halves[i]; }
        return t;
    }
    """).program)


class TestResolveDataAccess:
    def test_non_memory_op(self):
        image = image_for_notes()
        assert resolve_data_access(ins.movi(0, 1), 0, image, STACK) is None

    def test_ldrpc_exact(self):
        image = image_for_notes()
        instr = ins.ldr_pc(0, byte_offset=8)
        access = resolve_data_access(instr, 0x100, image, STACK)
        assert access.exact
        assert access.address == ((0x100 + 4) & ~3) + 8
        assert access.width == 4 and not access.is_write

    def test_sp_relative_is_stack_range(self):
        image = image_for_notes()
        access = resolve_data_access(ins.ldr_sp(0, 4), 0, image, STACK)
        assert access.ranges == (STACK,)
        assert not access.exact

    def test_push_counts_words(self):
        image = image_for_notes()
        access = resolve_data_access(ins.push((0, 1, 2), lr=True), 0,
                                     image, STACK)
        assert access.count == 4
        assert access.is_write

    def test_note_resolution(self):
        image = image_for_notes()
        instr = ins.mem_r(Op.LDRW_R, 0, 1, 2)
        instr_addr = 0x5000
        image.access_notes[instr_addr] = AccessNote.whole_object(
            "words", 32)
        access = resolve_data_access(instr, instr_addr, image, STACK)
        base = image.symbols["words"]
        assert access.ranges == ((base, base + 32),)

    def test_unannotated_load_is_unknown(self):
        image = image_for_notes()
        instr = ins.mem_r(Op.LDRW_R, 0, 1, 2)
        access = resolve_data_access(instr, 0xEE00, image, STACK)
        assert access.unknown


def make_cache_result(config, classes=None):
    result = CacheAnalysisResult(config=config)
    result.classes.update(classes or {})
    return result


class TestCostModelUncached:
    def cost_model(self, config):
        return CostModel(config, {}, None)

    def test_fetch_by_region(self):
        spm_model = self.cost_model(SystemConfig.scratchpad(256))
        assert spm_model.fetch_cost(0x10, ins.nop()) == 1
        assert spm_model.fetch_cost(MAIN_BASE, ins.nop()) == 2
        assert spm_model.fetch_cost(MAIN_BASE, ins.bl("x")) == 4

    def test_branch_refill_in_base_cost(self):
        model = self.cost_model(SystemConfig.uncached())
        base, taken = model.instr_cost(MAIN_BASE, ins.b(0))
        assert base == 2 + 2 and taken == 0
        from repro.isa.opcodes import Cond
        bcc = ins.bcc(Cond.EQ, 0)
        base, taken = model.instr_cost(MAIN_BASE, bcc)
        assert base == 2 and taken == 2

    def test_data_cost_worst_region(self):
        config = SystemConfig.scratchpad(256)
        instr = ins.mem_r(Op.LDRW_R, 0, 1, 2)
        accesses = {
            0x100: __import__("repro.wcet.accesses",
                              fromlist=["DataAccess"]).DataAccess(
                width=4, is_write=False,
                ranges=((0, 16), (MAIN_BASE, MAIN_BASE + 16))),
        }
        model = CostModel(config, accesses, None)
        # One target range is SPM (1 cycle), one is main (4): worst = 4.
        assert model.data_cost(0x100) == 4


class TestCostModelCached:
    def test_requires_analysis(self):
        config = SystemConfig.cached(CacheConfig(size=64))
        with pytest.raises(ValueError):
            CostModel(config, {}, None)

    def test_fetch_classified(self):
        config = SystemConfig.cached(CacheConfig(size=64))
        addr = MAIN_BASE
        result = make_cache_result(
            config.cache, {addr: AccessClass(fetch=AH)})
        model = CostModel(config, {}, result)
        assert model.fetch_cost(addr, ins.nop()) == 1
        assert model.fetch_cost(addr + 2, ins.nop()) == 16  # NC default

    def test_bl_straddling_lines(self):
        config = SystemConfig.cached(CacheConfig(size=64))
        result = make_cache_result(config.cache, {})
        model = CostModel(config, {}, result)
        same_line = MAIN_BASE            # 0 and 2 in one line
        straddle = MAIN_BASE + 14        # 14 and 16 in two lines
        assert model.fetch_cost(same_line, ins.bl("x")) == 17
        assert model.fetch_cost(straddle, ins.bl("x")) == 32

    def test_write_through_cost(self):
        from repro.wcet.accesses import DataAccess
        config = SystemConfig.cached(CacheConfig(size=64))
        result = make_cache_result(config.cache, {})
        accesses = {
            0x10: DataAccess(width=2, is_write=True,
                             ranges=((MAIN_BASE, MAIN_BASE + 2),)),
        }
        model = CostModel(config, accesses, result)
        assert model.data_cost(0x10) == 2   # halfword store to main

    def test_fm_penalty(self):
        config = SystemConfig.cached(CacheConfig(size=64))
        result = make_cache_result(config.cache, {})
        model = CostModel(config, {}, result)
        assert model.fetch_miss_penalty(0) == 16 - 1
