"""Registry drift guard: sources and `BENCHMARKS` must stay in sync.

The benchmark programs live as ``.mc`` data files while their golden
outputs live in :mod:`repro.benchmarks.reference`; nothing but these
tests ties the two together.  Every registry entry must have a readable
source file, the source must compile, and the bit-exact Python reference
must agree with an actual simulator run — so neither the registry, the
sources nor the reference models can drift apart unnoticed.
"""

import pytest

from repro.benchmarks import BENCHMARKS, get
from repro.link import link
from repro.memory import SystemConfig
from repro.minic import compile_source
from repro.sim import simulate

ALL_KEYS = sorted(BENCHMARKS)


@pytest.fixture(scope="module")
def compiled():
    return {key: compile_source(get(key).source()) for key in ALL_KEYS}


class TestRegistry:
    @pytest.mark.parametrize("key", ALL_KEYS)
    def test_source_is_readable(self, key):
        bench = get(key)
        assert bench.source_file.endswith(".mc")
        source = bench.source()
        assert isinstance(source, str) and source.strip(), \
            f"{key}: empty or unreadable source {bench.source_file!r}"

    @pytest.mark.parametrize("key", ALL_KEYS)
    def test_source_compiles(self, compiled, key):
        program = compiled[key].program
        names = {func.name for func in program.functions}
        assert "main" in names and "_start" in names

    @pytest.mark.parametrize("key", ALL_KEYS)
    def test_expected_contract(self, key):
        console, exit_code = get(key).expected()
        assert isinstance(console, list)
        assert all(isinstance(line, str) for line in console)
        assert 0 <= exit_code <= 255

    @pytest.mark.parametrize("key", ALL_KEYS)
    def test_expected_matches_simulator_run(self, compiled, key):
        image = link(compiled[key].program)
        result = simulate(image, SystemConfig.uncached())
        expected_console, expected_exit = get(key).expected()
        assert result.console == expected_console, \
            f"{key}: reference model and simulator disagree"
        assert result.exit_code == expected_exit
