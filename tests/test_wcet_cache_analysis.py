"""Cache MUST analysis: abstract domain, classification, soundness."""

import pytest

from repro.link import link
from repro.memory import CacheConfig, SystemConfig
from repro.minic import compile_source
from repro.sim import simulate
from repro.wcet import AH, FM, NC, CacheAnalysis, build_all_cfgs
from repro.wcet.analyzer import analyze_wcet
from repro.wcet.cacheanalysis import MayCache, MustCache, analyze_hierarchy
from repro.wcet.stackdepth import stack_region


class TestMustCacheDomain:
    def config(self, assoc=1):
        return CacheConfig(size=64 * assoc, assoc=assoc)

    def test_access_then_contains(self):
        state = MustCache(self.config())
        state.access_block(5)
        assert state.contains(5)

    def test_direct_mapped_conflict_evicts(self):
        state = MustCache(self.config())
        state.access_block(0)
        state.access_block(4)   # 4 sets: block 4 maps to set 0
        assert not state.contains(0)
        assert state.contains(4)

    def test_lru_ages(self):
        state = MustCache(self.config(assoc=2))
        state.access_block(0)
        state.access_block(4)
        assert state.contains(0) and state.contains(4)
        state.access_block(8)   # evicts 0 (age 1)
        assert not state.contains(0)
        assert state.contains(4) and state.contains(8)

    def test_refresh_resets_age(self):
        state = MustCache(self.config(assoc=2))
        state.access_block(0)
        state.access_block(4)
        state.access_block(0)   # refresh
        state.access_block(8)   # evicts 4 now
        assert state.contains(0)
        assert not state.contains(4)

    def test_join_is_intersection_with_max_age(self):
        config = self.config(assoc=2)
        left = MustCache(config)
        left.access_block(0)
        left.access_block(4)    # ages: 4->0, 0->1
        right = MustCache(config)
        right.access_block(4)
        right.access_block(0)   # ages: 0->0, 4->1
        changed = left.join_with(right)
        assert changed
        # Both blocks present in both, but at max age 1 each.
        assert left.sets[0][0] == 1
        assert left.sets[0][4] == 1

    def test_join_drops_one_sided_blocks(self):
        config = self.config()
        left = MustCache(config)
        left.access_block(0)
        right = MustCache(config)
        changed = left.join_with(right)
        assert changed
        assert not left.contains(0)

    def test_age_set_unknown_access(self):
        config = self.config(assoc=2)
        state = MustCache(config)
        state.access_block(0)
        state.age_set(0)
        assert state.contains(0)     # aged to 1, still resident
        state.age_set(0)
        assert not state.contains(0)  # aged out

    def test_write_no_evict(self):
        config = self.config()
        state = MustCache(config)
        state.access_block(0)
        state.age_set(0, evict=False)  # unknown write
        assert state.contains(0)       # capped at assoc-1, not evicted

    def test_copy_is_independent(self):
        state = MustCache(self.config())
        state.access_block(1)
        clone = state.copy()
        clone.access_block(5)
        assert state.contains(1) and not state.contains(5)


def analyze_program(source, cache, persistence=False):
    image = link(compile_source(source).program)
    cfgs = build_all_cfgs(image)
    entry_by_addr = {c.entry: n for n, c in cfgs.items()}
    rng = stack_region(cfgs, "_start", entry_by_addr)
    analysis = CacheAnalysis(image, cfgs, cache, rng, "_start",
                             persistence=persistence)
    return image, cfgs, analysis.run()


LOOP_SOURCE = """
int total;
int main(void) {
    int i;
    total = 0;
    for (i = 0; i < 100; i++) { total += i; }
    return total & 255;
}
"""


class TestClassification:
    def test_straightline_second_fetch_hits(self):
        source = "int main(void) { return 7; }"
        image, cfgs, result = analyze_program(source, CacheConfig(size=256))
        # The very first fetch of the program is cold (NC); within the
        # same 16-byte line, later fetches are guaranteed hits (AH).
        assert result.fetch_class(image.entry) == NC
        second = sorted(result.classes)[1]
        assert result.fetch_class(second) == AH
        classes = [e.fetch for e in result.classes.values()]
        assert classes.count(AH) > classes.count(NC)

    def test_must_only_loop_body_stays_nc_at_header(self):
        # Without persistence the header join (cold path vs warm path)
        # discards the warm information: no AH at the loop header line
        # beyond what straight-line prefetch provides.
        image, cfgs, result = analyze_program(LOOP_SOURCE,
                                              CacheConfig(size=1024))
        assert result.count(FM) == 0

    def test_persistence_upgrades_loop_fetches(self):
        image, cfgs, result = analyze_program(
            LOOP_SOURCE, CacheConfig(size=1024), persistence=True)
        assert result.count(FM) > 0

    def test_icache_ignores_data(self):
        image, cfgs, result = analyze_program(
            LOOP_SOURCE, CacheConfig(size=1024, unified=False),
            persistence=True)
        # Data never clobbers: with persistence every loop fetch line
        # is first-miss or always-hit.
        assert result.count(FM) > 0


class TestSoundness:
    """The cornerstone property: AH-classified accesses never miss."""

    @pytest.mark.parametrize("size", [64, 256, 1024])
    @pytest.mark.parametrize("key", ["adpcm", "multisort"])
    def test_always_hit_fetches_never_miss(self, key, size):
        from repro.benchmarks import get
        image = link(compile_source(get(key).source()).program)
        cfgs = build_all_cfgs(image)
        entry_by_addr = {c.entry: n for n, c in cfgs.items()}
        rng = stack_region(cfgs, "_start", entry_by_addr)
        cache = CacheConfig(size=size)
        result = CacheAnalysis(image, cfgs, cache, rng, "_start").run()

        sim = simulate(image, SystemConfig.cached(cache),
                       record_misses=True)
        for addr, entry in result.classes.items():
            if entry.fetch == AH:
                assert sim.fetch_misses.get(addr, 0) == 0, hex(addr)
            if entry.data == AH:
                assert sim.read_misses.get(addr, 0) == 0, hex(addr)


class TestMayCacheDomain:
    def config(self):
        return CacheConfig(size=64)

    def test_absent_block_is_guaranteed_miss(self):
        state = MayCache(self.config())
        assert not state.may_contain(5)
        state.add_block(5)
        assert state.may_contain(5)

    def test_never_evicts(self):
        state = MayCache(self.config())
        state.add_block(0)
        for block in range(4, 64, 4):  # many conflicting inserts
            state.add_block(block)
        assert state.may_contain(0)

    def test_top_absorbs(self):
        state = MayCache(self.config())
        state.mark_top(0)
        assert state.may_contain(0) and state.may_contain(4)
        assert not state.may_contain(1)   # other set untouched

    def test_join_is_union(self):
        left = MayCache(self.config())
        left.add_block(0)
        right = MayCache(self.config())
        right.add_block(4)
        assert left.join_with(right)
        assert left.may_contain(0) and left.may_contain(4)
        assert not left.join_with(right)  # already absorbed


class TestMultiLevelChaining:
    SOURCE = """
    int total;
    int main(void) {
        int i;
        total = 0;
        for (i = 0; i < 50; i++) { total += i; }
        return total & 255;
    }
    """

    def hierarchy_result(self, config):
        image = link(compile_source(self.SOURCE).program)
        cfgs = build_all_cfgs(image)
        entry_by_addr = {c.entry: n for n, c in cfgs.items()}
        rng = stack_region(cfgs, "_start", entry_by_addr)
        return image, analyze_hierarchy(image, cfgs, config, rng, "_start")

    def test_primary_matches_single_level_analysis(self):
        l1 = CacheConfig(size=256)
        config = SystemConfig.two_level(l1, CacheConfig(size=1024))
        image, result = self.hierarchy_result(config)
        cfgs = build_all_cfgs(image)
        entry_by_addr = {c.entry: n for n, c in cfgs.items()}
        rng = stack_region(cfgs, "_start", entry_by_addr)
        single = CacheAnalysis(image, cfgs, l1, rng, "_start").run()
        primary = result.primary
        for addr, entry in single.classes.items():
            assert primary.fetch_class(addr) == entry.fetch
            assert primary.data_class(addr) == entry.data

    def test_always_miss_facts_feed_the_l2(self):
        config = SystemConfig.two_level(CacheConfig(size=64),
                                        CacheConfig(size=2048))
        _image, result = self.hierarchy_result(config)
        primary = result.primary
        am = [addr for addr, entry in primary.classes.items()
              if entry.fetch_always_miss]
        # At least the program's first fetch can never hit a cold L1.
        assert am
        # Always-miss and always-hit are mutually exclusive.
        for addr in am:
            assert primary.fetch_class(addr) != AH

    def test_l2_soundness_always_hit_never_served_by_main(self):
        config = SystemConfig.two_level(CacheConfig(size=64),
                                        CacheConfig(size=2048))
        image, result = self.hierarchy_result(config)
        _level, l2res = result.fetch_results()[1]
        sim = simulate(image, config, record_misses=True)
        # An L2-AH fetch may miss L1 but is guaranteed present in L2:
        # the observed access must never fall through to main memory.
        l2_ah = [addr for addr, entry in l2res.classes.items()
                 if entry.fetch == AH]
        assert l2_ah  # the property must not hold vacuously
        for addr in l2_ah:
            assert sim.fetch_main_misses.get(addr, 0) == 0, hex(addr)
        wcet = analyze_wcet(image, config)
        assert wcet.wcet >= sim.cycles


class TestConfigPointKeys:
    def test_level_tuples_distinguish_geometry(self):
        a = SystemConfig.two_level(CacheConfig(size=256),
                                   CacheConfig(size=2048, assoc=1))
        b = SystemConfig.two_level(CacheConfig(size=256),
                                   CacheConfig(size=2048, assoc=4))
        assert a.name == b.name          # names collide by design...
        assert a.levels != b.levels      # ...but the cache keys cannot
        assert hash(a.levels) != hash(b.levels) or a.levels == b.levels
