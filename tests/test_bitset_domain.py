"""Packed bitset abstract-cache domain vs. the dict-based reference.

The packed domain (``repro.wcet.cacheanalysis.PackedCacheDomain`` and
the ``CacheAnalysis(domain="packed")`` fixpoints built on it) must be
observationally identical to the retained dict-based ``MustCache`` /
``MayCache`` semantics.  Three layers of evidence:

* randomized-trace differential tests: the same operation stream
  (definite/uncertain accesses, no-allocate writes, set and whole-cache
  aging, joins, MAY_TOP) applied to both domains yields the same
  decoded state after *every* step;
* whole-analysis differential tests: ``domain="packed"`` and
  ``domain="dict"`` produce instruction-identical classifications on
  real benchmarks, single-level and CAC-chained multi-level;
* interning and reuse-cache invariants: hash-consed states are shared
  objects, and the content-addressed reuse cache (memory and disk
  layers) returns results equal to a fresh analysis.
"""

import random

import pytest

from repro.link import link
from repro.memory import CacheConfig, SystemConfig
from repro.minic import compile_source
from repro.wcet import CacheAnalysis, PackedCacheDomain, build_all_cfgs
from repro.wcet import cacheanalysis
from repro.wcet.cacheanalysis import (
    MayCache,
    MustCache,
    _intern,
    analyze_hierarchy,
)
from repro.wcet.stackdepth import stack_region

CONFIGS = [
    CacheConfig(size=64),                 # direct mapped, 4 sets
    CacheConfig(size=128, assoc=2),       # 2-way, 4 sets
    CacheConfig(size=64, assoc=4),        # 4-way, 1 set
    CacheConfig(size=256, assoc=2),       # 2-way, 8 sets
]


def _random_trace(rng, config, universe, length):
    """A stream of abstract-domain operations over *universe* blocks."""
    ops = []
    for _ in range(length):
        kind = rng.randrange(8)
        if kind <= 2:
            ops.append(("access", rng.choice(universe)))
        elif kind == 3:
            ops.append(("uncertain", rng.choice(universe)))
        elif kind == 4:
            ops.append(("write", rng.choice(universe)))
        elif kind == 5:
            indices = rng.sample(range(config.num_sets),
                                 rng.randrange(1, config.num_sets + 1))
            ops.append(("age_sets", tuple(indices), rng.random() < 0.5))
        elif kind == 6:
            ops.append(("age_all", rng.random() < 0.5))
        else:
            ops.append(("join",))
    return ops


class TestMustDifferential:
    """Random traces: packed MUST states decode to the dict reference."""

    def _apply_dict(self, state, other, op):
        if op[0] == "access":
            state.access_block(op[1])
        elif op[0] == "uncertain":
            state.access_block_uncertain(op[1])
        elif op[0] == "write":
            state.access_block(op[1], allocate=state.contains(op[1]))
        elif op[0] == "age_sets":
            for index in op[1]:
                state.age_set(index, evict=op[2])
        elif op[0] == "age_all":
            for index in list(state.sets):
                state.age_set(index, evict=op[1])
        else:
            state.join_with(other)

    def _apply_packed(self, domain, state, other, op):
        if op[0] == "access":
            return domain.must_access(state, op[1])
        if op[0] == "uncertain":
            return domain.must_access_uncertain(state, op[1])
        if op[0] == "write":
            return domain.must_write(state, op[1])
        if op[0] == "age_sets":
            return domain.must_age_sets(state, op[1], evict=op[2])
        if op[0] == "age_all":
            return domain.must_age_all(state, evict=op[1])
        return domain.must_join(state, other)

    @pytest.mark.parametrize("config", CONFIGS)
    @pytest.mark.parametrize("seed", range(6))
    def test_random_traces(self, config, seed):
        rng = random.Random(seed * 1000 + config.size + config.assoc)
        universe = list(range(0, 24))
        domain = PackedCacheDomain(config, universe)

        # A second, independently evolved state feeds the joins.
        dict_state, dict_other = MustCache(config), MustCache(config)
        packed_state = packed_other = domain.must_empty()
        for block in rng.sample(universe, 8):
            dict_other.access_block(block)
            packed_other = domain.must_access(packed_other, block)

        for step, op in enumerate(_random_trace(rng, config, universe, 160)):
            self._apply_dict(dict_state, dict_other, op)
            packed_state = self._apply_packed(domain, packed_state,
                                              packed_other, op)
            decoded = domain.must_decode(packed_state)
            assert decoded.fingerprint() == dict_state.fingerprint(), \
                f"seed {seed} {config} diverged at step {step}: {op}"
            for block in universe:
                assert domain.must_contains(packed_state, block) == \
                    dict_state.contains(block)


class TestMayDifferential:
    """Random traces: packed MAY states decode to the dict reference."""

    @pytest.mark.parametrize("config", CONFIGS)
    @pytest.mark.parametrize("seed", range(6))
    def test_random_traces(self, config, seed):
        rng = random.Random(seed * 77 + config.num_sets)
        universe = list(range(0, 24))
        domain = PackedCacheDomain(config, universe)

        dict_state, dict_other = MayCache(config), MayCache(config)
        packed_state = packed_other = domain.may_empty()
        for block in rng.sample(universe, 6):
            dict_other.add_block(block)
            packed_other = domain.may_add(packed_other, block)
        dict_other.mark_top(0)
        packed_other = domain.may_mark_top(packed_other, (0,))

        for step in range(160):
            kind = rng.randrange(6)
            if kind <= 2:
                block = rng.choice(universe)
                dict_state.add_block(block)
                packed_state = domain.may_add(packed_state, block)
            elif kind == 3:
                index = rng.randrange(config.num_sets)
                dict_state.mark_top(index)
                packed_state = domain.may_mark_top(packed_state, (index,))
            elif kind == 4 and rng.random() < 0.2:
                dict_state.mark_all_top()
                packed_state = domain.may_mark_all_top(packed_state)
            else:
                dict_state.join_with(dict_other)
                packed_state = domain.may_join(packed_state, packed_other)
            decoded = domain.may_decode(packed_state)
            assert decoded.fingerprint() == dict_state.fingerprint(), \
                f"seed {seed} {config} diverged at step {step}"
            for block in universe:
                assert domain.may_contains(packed_state, block) == \
                    dict_state.may_contain(block)


# -- whole-analysis differential --------------------------------------------

LOOPY_SOURCE = """
int data[32];
int total;
int main(void) {
    int i;
    int j;
    total = 0;
    for (i = 0; i < 8; i++) {
        #pragma loopbound 32
        for (j = 0; j < 32; j++) { data[j] = data[j] + i; }
        total += data[i];
    }
    return total & 255;
}
"""


def _frontend(source):
    image = link(compile_source(source).program)
    cfgs = build_all_cfgs(image)
    entry_by_addr = {cfg.entry: name for name, cfg in cfgs.items()}
    rng = stack_region(cfgs, "_start", entry_by_addr)
    return image, cfgs, rng


def _classes_equal(a, b):
    assert set(a.classes) == set(b.classes)
    for addr, entry in a.classes.items():
        assert vars(entry) == vars(b.classes[addr]), hex(addr)


def _bench_frontend(key):
    from repro.benchmarks import get
    return _frontend(get(key).source())


class TestAnalysisDifferential:
    @pytest.mark.parametrize("key", ["crc", "fir"])
    @pytest.mark.parametrize("cache", [
        CacheConfig(size=64),
        CacheConfig(size=256, assoc=2),
        CacheConfig(size=512, assoc=4),
        CacheConfig(size=256, unified=False),
    ])
    def test_single_level(self, key, cache):
        image, cfgs, rng = _bench_frontend(key)
        for persistence in (False, True):
            results = [
                CacheAnalysis(image, cfgs, cache, rng, "_start",
                              persistence=persistence, always_miss=True,
                              domain=domain).run()
                for domain in ("dict", "packed")
            ]
            _classes_equal(*results)

    @pytest.mark.parametrize("config", [
        SystemConfig.two_level(CacheConfig(size=64),
                               CacheConfig(size=1024)),
        SystemConfig.two_level(CacheConfig(size=128, assoc=2),
                               CacheConfig(size=2048, assoc=4)),
        SystemConfig.split_l1(CacheConfig(size=128, unified=False),
                              CacheConfig(size=128)),
        SystemConfig.hybrid(256, CacheConfig(size=128)),
    ])
    def test_hierarchy(self, config):
        image, cfgs, rng = _frontend(LOOPY_SOURCE)
        results = [
            analyze_hierarchy(image, cfgs, config, rng, "_start",
                              domain=domain, reuse=False)
            for domain in ("dict", "packed")
        ]
        for level_dict, level_packed in zip(results[0].levels,
                                            results[1].levels):
            for a, b in ((level_dict.iresult, level_packed.iresult),
                         (level_dict.dresult, level_packed.dresult)):
                assert (a is None) == (b is None)
                if a is not None:
                    _classes_equal(a, b)


# -- interning and the reuse cache ------------------------------------------

class TestInterning:
    def test_intern_returns_canonical_object(self):
        table = {}
        first = (1, 2, 3)
        assert _intern(table, first) is first
        assert _intern(table, (1, 2, 3)) is first  # distinct but equal
        assert _intern(table, 7) == 7

    def test_analysis_interns_states(self):
        image, cfgs, rng = _frontend(LOOPY_SOURCE)
        before = dict(cacheanalysis.COUNTERS)
        result = CacheAnalysis(image, cfgs, CacheConfig(size=128), rng,
                               "_start", domain="packed").run()
        after = cacheanalysis.COUNTERS
        # A fixpoint revisits nodes whose out-state stabilised: most
        # transfers reproduce an already-interned state.
        assert after["intern_hits"] > before["intern_hits"]
        assert after["intern_misses"] > before["intern_misses"]
        again = CacheAnalysis(image, cfgs, CacheConfig(size=128), rng,
                              "_start", domain="packed").run()
        _classes_equal(result, again)

    def test_shared_tables_share_states_across_analyses(self):
        image, cfgs, rng = _frontend(LOOPY_SOURCE)
        tables = ({}, {})
        for _ in range(2):
            CacheAnalysis(image, cfgs, CacheConfig(size=128), rng,
                          "_start", domain="packed",
                          intern_tables=tables).run()
        must_table = tables[0]
        assert must_table
        for state, canonical in must_table.items():
            assert state is canonical


class TestReuseCache:
    def _hierarchy(self, image, cfgs, rng, config):
        return analyze_hierarchy(image, cfgs, config, rng, "_start")

    def test_memory_layer_hits(self):
        image, cfgs, rng = _frontend(LOOPY_SOURCE)
        config = SystemConfig.two_level(CacheConfig(size=64),
                                        CacheConfig(size=1024))
        cacheanalysis.clear_analysis_caches()
        before = dict(cacheanalysis.COUNTERS)
        first = self._hierarchy(image, cfgs, rng, config)
        mid = dict(cacheanalysis.COUNTERS)
        assert mid["reuse_misses"] - before["reuse_misses"] == 2  # L1 + L2
        second = self._hierarchy(image, cfgs, rng, config)
        after = cacheanalysis.COUNTERS
        assert after["reuse_hits"] - mid["reuse_hits"] == 2
        # Cache hits return the very same result objects.
        assert second.levels[0].iresult is first.levels[0].iresult
        assert second.levels[1].iresult is first.levels[1].iresult

    def test_l1_reused_across_l2_sweep(self):
        image, cfgs, rng = _frontend(LOOPY_SOURCE)
        cacheanalysis.clear_analysis_caches()
        l1 = CacheConfig(size=64)
        results = [
            self._hierarchy(image, cfgs, rng,
                            SystemConfig.two_level(l1, CacheConfig(size=size)))
            for size in (512, 1024, 2048)
        ]
        # The outermost (L1) analysis is one shared object everywhere:
        # only the L2 fixpoints ran per sweep point.
        assert results[1].levels[0].iresult is results[0].levels[0].iresult
        assert results[2].levels[0].iresult is results[0].levels[0].iresult

    def test_disk_layer_round_trip(self, tmp_path):
        image, cfgs, rng = _frontend(LOOPY_SOURCE)
        config = SystemConfig.cached(CacheConfig(size=128))
        cacheanalysis.set_analysis_cache_dir(tmp_path)
        try:
            cacheanalysis.clear_analysis_caches()
            first = self._hierarchy(image, cfgs, rng, config)
            assert list(tmp_path.rglob("*.pkl"))  # sharded store layout
            # A "new process": empty memory layer, same directory.
            cacheanalysis.clear_analysis_caches()
            before = dict(cacheanalysis.COUNTERS)
            second = self._hierarchy(image, cfgs, rng, config)
            after = cacheanalysis.COUNTERS
            assert after["reuse_disk_hits"] > before["reuse_disk_hits"]
            _classes_equal(first.primary, second.primary)
        finally:
            cacheanalysis.set_analysis_cache_dir(None)

    def test_content_key_tracks_image_content(self):
        image_a, _, _ = _frontend(LOOPY_SOURCE)
        image_b, _, _ = _frontend(LOOPY_SOURCE)
        image_c, _, _ = _frontend(LOOPY_SOURCE.replace("i < 8", "i < 7"))
        assert image_a.content_key() == image_b.content_key()
        assert image_a.content_key() != image_c.content_key()
