"""Level pipeline: specs, validation, chain costs, hierarchy outcomes."""

import pytest

from repro.memory import (
    MAIN_BASE,
    AccessTiming,
    CacheConfig,
    CacheLevel,
    MainMemoryLevel,
    MemoryHierarchy,
    SpmLevel,
    SystemConfig,
    serve_costs,
    validate_levels,
)
from repro.memory.levels import path_geometry


class TestLevelSpecs:
    def test_cache_level_needs_a_side(self):
        with pytest.raises(ValueError):
            CacheLevel(name="L1")

    def test_shared_needs_one_config(self):
        with pytest.raises(ValueError):
            CacheLevel(name="L1", icache=CacheConfig(size=64),
                       dcache=CacheConfig(size=64), shared=True)

    def test_spm_positive(self):
        with pytest.raises(ValueError):
            SpmLevel(0)

    def test_factories(self):
        cfg = CacheConfig(size=64)
        unified = CacheLevel.unified(cfg)
        assert unified.shared and unified.icache is unified.dcache
        instr = CacheLevel.instruction(cfg)
        assert instr.icache is cfg and instr.dcache is None
        split = CacheLevel.split(cfg, CacheConfig(size=128))
        assert split.icache is cfg and split.dcache.size == 128


class TestValidation:
    def test_must_end_at_main(self):
        with pytest.raises(ValueError):
            validate_levels((SpmLevel(64),))

    def test_spm_must_be_first(self):
        with pytest.raises(ValueError):
            validate_levels((CacheLevel.unified(CacheConfig(size=64)),
                             SpmLevel(64), MainMemoryLevel()))

    def test_one_spm_only(self):
        with pytest.raises(ValueError):
            validate_levels((SpmLevel(64), SpmLevel(64),
                             MainMemoryLevel()))

    def test_line_sizes_must_nest(self):
        l1 = CacheLevel.unified(CacheConfig(size=64, line_size=32))
        l2 = CacheLevel.unified(CacheConfig(size=256, line_size=16),
                                name="L2")
        with pytest.raises(ValueError):
            validate_levels((l1, l2, MainMemoryLevel()))

    def test_good_pipelines(self):
        validate_levels((MainMemoryLevel(),))
        validate_levels((SpmLevel(64),
                         CacheLevel.unified(CacheConfig(size=64)),
                         CacheLevel.unified(CacheConfig(size=512),
                                            name="L2"),
                         MainMemoryLevel()))


class TestServeCosts:
    def test_single_level_matches_table1(self):
        timing = AccessTiming.table1()
        geometry = ((16, 1),)
        # Hit = 1 cycle, miss = the paper's 16-cycle line fill.
        assert serve_costs(geometry, timing) == [1, 16]

    def test_two_level(self):
        timing = AccessTiming.table1()
        geometry = ((16, 1), (16, 1))
        # L1 hit 1; L2 hit = 4 word transfers at L2 speed; main =
        # L2 line fill (16) plus the L1 refill from L2 (4).
        assert serve_costs(geometry, timing) == [1, 4, 20]

    def test_slow_l2(self):
        timing = AccessTiming.table1()
        geometry = ((16, 1), (32, 2))
        assert serve_costs(geometry, timing) == [1, 8, 8 + 32]

    def test_path_geometry(self):
        l1 = CacheLevel.split(CacheConfig(size=64, line_size=16),
                              CacheConfig(size=128, line_size=32))
        assert path_geometry((l1,), "i") == ((16, 1),)
        assert path_geometry((l1,), "d") == ((32, 1),)


class TestSystemConfigPipelines:
    def test_legacy_shapes_derive_levels(self):
        spm = SystemConfig.scratchpad(256)
        assert isinstance(spm.levels[0], SpmLevel)
        assert isinstance(spm.levels[-1], MainMemoryLevel)
        cached = SystemConfig.cached(CacheConfig(size=64))
        assert cached.levels[0].shared
        assert SystemConfig.uncached().levels == (MainMemoryLevel(),)

    def test_legacy_mirrors_from_levels(self):
        config = SystemConfig.hybrid(128, CacheConfig(size=64))
        assert config.spm_size == 128
        assert config.cache.size == 64
        two = SystemConfig.two_level(CacheConfig(size=64),
                                     CacheConfig(size=512))
        assert two.cache.size == 64
        assert len(two.cache_level_specs) == 2

    def test_split_paths(self):
        config = SystemConfig.split_l1(
            CacheConfig(size=64, unified=False), CacheConfig(size=128))
        assert [lvl.icache.size for lvl in config.fetch_path()] == [64]
        assert [lvl.dcache.size for lvl in config.data_path()] == [128]

    def test_icache_l2_paths(self):
        config = SystemConfig.two_level(
            CacheConfig(size=64, unified=False), CacheConfig(size=512))
        assert len(config.fetch_path()) == 2
        assert len(config.data_path()) == 1  # only the unified L2

    def test_describe_names_levels(self):
        config = SystemConfig.two_level(CacheConfig(size=64),
                                        CacheConfig(size=512))
        assert "L2" in config.describe()
        assert "main memory" in config.describe()


class TestHierarchyOutcomes:
    def test_outcome_fields(self):
        hier = MemoryHierarchy(SystemConfig.cached(CacheConfig(size=64)))
        out = hier.fetch(MAIN_BASE)
        assert (out.cycles, out.missed, out.served_by) == (16, True, "main")
        out = hier.fetch(MAIN_BASE)
        assert (out.cycles, out.missed, out.served_by) == (1, False, "L1")

    def test_two_level_fetch_costs(self):
        config = SystemConfig.two_level(CacheConfig(size=64),
                                        CacheConfig(size=1024))
        hier = MemoryHierarchy(config)
        assert hier.fetch(MAIN_BASE).cycles == 20        # both cold
        # Evict the L1 line (64 B cache: +64 conflicts), keep L2 warm.
        hier.fetch(MAIN_BASE + 64)
        out = hier.fetch(MAIN_BASE)
        assert (out.cycles, out.served_by) == (4, "L2")
        assert out.missed

    def test_split_paths_are_independent(self):
        config = SystemConfig.split_l1(
            CacheConfig(size=64, unified=False), CacheConfig(size=64))
        hier = MemoryHierarchy(config)
        hier.fetch(MAIN_BASE)
        # A data read of the same line still misses: separate arrays.
        assert hier.read(MAIN_BASE, 4).missed
        assert not hier.read(MAIN_BASE + 4, 4).missed
        assert set(hier.level_stats) == {"L1I", "L1D"}

    def test_hybrid_spm_bypasses_cache(self):
        config = SystemConfig.hybrid(256, CacheConfig(size=64))
        hier = MemoryHierarchy(config)
        out = hier.fetch(0)
        assert (out.cycles, out.missed, out.served_by) == (1, False, "spm")
        assert hier.cache.stats.fetch_misses == 0   # never consulted
        assert hier.fetch(MAIN_BASE).cycles == 16   # cache path intact

    def test_write_through_touches_every_level(self):
        config = SystemConfig.two_level(CacheConfig(size=64),
                                        CacheConfig(size=1024))
        hier = MemoryHierarchy(config)
        hier.read(MAIN_BASE, 4)                      # both levels warm
        assert hier.write(MAIN_BASE, 4).cycles == 4  # main cost
        stats = hier.level_stats
        assert stats["L1"].write_hits == 1
        assert stats["L2"].write_hits == 1

    def test_legacy_exclusive_error_mentions_hybrid(self):
        with pytest.raises(ValueError, match="hybrid"):
            SystemConfig(name="x", spm_size=64, cache=CacheConfig(size=64))
