"""Encode/decode round-trip and range checks for the T16 ISA."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import Cond, Instr, Op, decode, encode
from repro.isa.encoding import EncodingError, IllegalInstruction
from repro.isa import instruction as ins


def roundtrip(instr, addr=0x1000):
    words = encode(instr, addr)
    if len(words) == 2:
        decoded = decode(words[0], addr, words[1])
    else:
        decoded = decode(words[0], addr)
    return decoded


class TestBasicRoundtrip:
    def test_movi(self):
        decoded = roundtrip(ins.movi(3, 200))
        assert decoded.op is Op.MOVI
        assert decoded.rd == 3
        assert decoded.imm == 200

    def test_cmpi(self):
        decoded = roundtrip(ins.cmpi(7, 0))
        assert decoded.op is Op.CMPI and decoded.rd == 7

    def test_addi_subi(self):
        assert roundtrip(ins.addi(1, 255)).imm == 255
        assert roundtrip(ins.subi(2, 1)).op is Op.SUBI

    def test_three_address_add_sub(self):
        decoded = roundtrip(ins.add_r(1, 2, 3))
        assert (decoded.rd, decoded.rn, decoded.rm) == (1, 2, 3)
        decoded = roundtrip(ins.sub_r(5, 6, 7))
        assert decoded.op is Op.SUBR

    def test_add3_sub3(self):
        decoded = roundtrip(ins.add3(0, 1, 7))
        assert decoded.op is Op.ADD3 and decoded.imm == 7
        decoded = roundtrip(ins.sub3(0, 1, 0))
        assert decoded.op is Op.SUB3 and decoded.imm == 0

    def test_shifts_immediate(self):
        for op in (Op.LSLI, Op.LSRI, Op.ASRI):
            decoded = roundtrip(ins.shift_i(op, 2, 3, 31))
            assert decoded.op is op and decoded.imm == 31

    def test_alu_group_all(self):
        from repro.isa.opcodes import ALU_ORDER
        for op in ALU_ORDER:
            decoded = roundtrip(ins.alu(op, 4, 5))
            assert decoded.op is op
            assert decoded.rd == 4 and decoded.rm == 5

    def test_movr_bx(self):
        decoded = roundtrip(ins.movr(0, 7))
        assert decoded.op is Op.MOVR
        decoded = roundtrip(ins.bx(14))
        assert decoded.op is Op.BX and decoded.rm == 14

    def test_memory_immediate_forms(self):
        cases = [
            (Op.LDRWI, 124, 4), (Op.STRWI, 0, 4),
            (Op.LDRHI, 62, 2), (Op.STRHI, 2, 2),
            (Op.LDRBI, 31, 1), (Op.STRBI, 1, 1),
        ]
        for op, offset, _scale in cases:
            decoded = roundtrip(ins.mem_i(op, 1, 2, offset))
            assert decoded.op is op and decoded.imm == offset

    def test_memory_register_forms(self):
        for op in (Op.LDRW_R, Op.STRW_R, Op.LDRH_R, Op.STRH_R,
                   Op.LDRB_R, Op.STRB_R, Op.LDRSH_R, Op.LDRSB_R):
            decoded = roundtrip(ins.mem_r(op, 1, 2, 3))
            assert decoded.op is op
            assert (decoded.rd, decoded.rn, decoded.rm) == (1, 2, 3)

    def test_sp_relative(self):
        decoded = roundtrip(ins.ldr_sp(1, 1020))
        assert decoded.op is Op.LDRSP and decoded.imm == 1020
        decoded = roundtrip(ins.str_sp(2, 0))
        assert decoded.op is Op.STRSP

    def test_sp_adjust(self):
        assert roundtrip(ins.sp_adjust(-508)).imm == -508
        assert roundtrip(ins.sp_adjust(508)).imm == 508
        assert roundtrip(ins.sp_adjust(0)).imm == 0

    def test_add_sp_pc_address(self):
        decoded = roundtrip(ins.add_sp_i(3, 64))
        assert decoded.op is Op.ADDSPI and decoded.imm == 64
        decoded = roundtrip(ins.add_pc(3, 64))
        assert decoded.op is Op.ADDPC and decoded.imm == 64

    def test_push_pop(self):
        decoded = roundtrip(ins.push((4, 5, 6), lr=True))
        assert decoded.reglist == (4, 5, 6) and decoded.with_link
        decoded = roundtrip(ins.pop((0,), pc=False))
        assert decoded.reglist == (0,) and not decoded.with_link

    def test_swi_nop(self):
        assert roundtrip(ins.swi(255)).imm == 255
        assert roundtrip(ins.nop()).op is Op.NOP


class TestBranches:
    def test_b_forward_backward(self):
        addr = 0x100
        for target in (0x100 + 4 + 2 * 1023, 0x100 + 4 - 2 * 1024):
            decoded = roundtrip(ins.b(target), addr)
            assert decoded.op is Op.B and decoded.target == target

    def test_bcc_all_conditions(self):
        addr = 0x200
        target = addr + 4 + 40
        for cond in Cond:
            if cond is Cond.AL:
                continue
            decoded = roundtrip(ins.bcc(cond, target), addr)
            assert decoded.cond is cond and decoded.target == target

    def test_bcc_al_becomes_b(self):
        instr = ins.bcc(Cond.AL, "x")
        assert instr.op is Op.B

    def test_bl_roundtrip(self):
        addr = 0x400000
        for target in (addr + 4, addr + 4 + 2 * ((1 << 21) - 1),
                       addr + 4 - (1 << 22)):
            decoded = roundtrip(ins.bl(target), addr)
            assert decoded.op is Op.BL and decoded.target == target
            assert decoded.size == 4

    def test_branch_out_of_range_raises(self):
        with pytest.raises(EncodingError):
            encode(ins.b(0x10000), 0)
        with pytest.raises(EncodingError):
            encode(ins.bcc(Cond.EQ, 0x1000), 0)

    def test_unresolved_symbol_raises(self):
        with pytest.raises(EncodingError):
            encode(ins.b("nowhere"), 0)

    def test_ldrpc_target_resolution(self):
        instr = ins.ldr_pc(2, target="pool")
        words = encode(instr, 0x100, resolve=lambda s: 0x100 + 4 + 64)
        decoded = decode(words[0], 0x100)
        assert decoded.target == 0x100 + 4 + 64


class TestIllegal:
    def test_stray_bl_suffix(self):
        with pytest.raises(IllegalInstruction):
            decode(0b11110 << 11, 0)

    def test_bl_prefix_without_suffix(self):
        with pytest.raises(IllegalInstruction):
            decode(0b11101 << 11, 0, 0x0000)

    def test_reserved_cond_field(self):
        # cond=15 in the BCC space is illegal.
        with pytest.raises(IllegalInstruction):
            decode((0b1101 << 12) | (15 << 8), 0)

    def test_nop_family_nonzero_bits(self):
        with pytest.raises(IllegalInstruction):
            decode((0b11111 << 11) | 1, 0)


# -- property-based round-trip -----------------------------------------------

_low = st.integers(0, 7)


@st.composite
def arbitrary_instr(draw):
    choice = draw(st.sampled_from([
        "movi", "cmpi", "addi", "subi", "addr", "add3", "shift",
        "alu", "movr", "mem_i", "mem_r", "sp", "push", "pop",
        "spadj", "swi",
    ]))
    if choice in ("movi", "cmpi", "addi", "subi"):
        factory = getattr(ins, choice)
        return factory(draw(_low), draw(st.integers(0, 255)))
    if choice == "addr":
        return ins.add_r(draw(_low), draw(_low), draw(_low))
    if choice == "add3":
        return ins.add3(draw(_low), draw(_low), draw(st.integers(0, 7)))
    if choice == "shift":
        op = draw(st.sampled_from([Op.LSLI, Op.LSRI, Op.ASRI]))
        return ins.shift_i(op, draw(_low), draw(_low),
                           draw(st.integers(0, 31)))
    if choice == "alu":
        from repro.isa.opcodes import ALU_ORDER
        return ins.alu(draw(st.sampled_from(ALU_ORDER)), draw(_low),
                       draw(_low))
    if choice == "movr":
        return ins.movr(draw(_low), draw(_low))
    if choice == "mem_i":
        op = draw(st.sampled_from(
            [Op.LDRWI, Op.STRWI, Op.LDRHI, Op.STRHI, Op.LDRBI, Op.STRBI]))
        scale = {Op.LDRWI: 4, Op.STRWI: 4, Op.LDRHI: 2, Op.STRHI: 2,
                 Op.LDRBI: 1, Op.STRBI: 1}[op]
        return ins.mem_i(op, draw(_low), draw(_low),
                         draw(st.integers(0, 31)) * scale)
    if choice == "mem_r":
        op = draw(st.sampled_from(
            [Op.LDRW_R, Op.STRW_R, Op.LDRH_R, Op.STRH_R, Op.LDRB_R,
             Op.STRB_R, Op.LDRSH_R, Op.LDRSB_R]))
        return ins.mem_r(op, draw(_low), draw(_low), draw(_low))
    if choice == "sp":
        factory = draw(st.sampled_from([ins.ldr_sp, ins.str_sp,
                                        ins.add_sp_i]))
        return factory(draw(_low), draw(st.integers(0, 255)) * 4)
    if choice == "push":
        regs = draw(st.lists(_low, unique=True, max_size=8))
        return ins.push(regs, lr=draw(st.booleans()))
    if choice == "pop":
        regs = draw(st.lists(_low, unique=True, max_size=8))
        return ins.pop(regs, pc=draw(st.booleans()))
    if choice == "spadj":
        return ins.sp_adjust(draw(st.integers(-127, 127)) * 4)
    return ins.swi(draw(st.integers(0, 255)))


@given(arbitrary_instr())
def test_roundtrip_property(instr):
    decoded = roundtrip(instr)
    assert decoded == instr


@given(arbitrary_instr(), st.integers(0, 0x7FFFF))
def test_encoding_is_16bit(instr, addr):
    words = encode(instr, addr * 2)
    assert all(0 <= w <= 0xFFFF for w in words)
