"""CFG reconstruction, dominators, natural loops, stack analysis."""

import pytest

from repro.link import link
from repro.memory import SystemConfig
from repro.minic import compile_source
from repro.wcet import (
    CFGError,
    LoopError,
    build_all_cfgs,
    build_function_cfg,
    compute_dominators,
    find_natural_loops,
    max_stack_depth,
    resolve_bounds,
    stack_region,
)
from repro.wcet.stackdepth import StackAnalysisError, frame_bytes


def image_of(source):
    return link(compile_source(source).program)


SOURCE = """
int total;
int helper(int x) { return x * 2; }
int main(void) {
    int i;
    total = 0;
    for (i = 0; i < 10; i++) {
        if (i & 1) { total += helper(i); }
        else { continue; }
    }
    return total;
}
"""


class TestCFG:
    def test_blocks_and_edges(self):
        image = image_of(SOURCE)
        cfg = build_function_cfg(image, "main")
        assert cfg.entry == image.symbols["main"]
        # Every successor must be a block start.
        for block in cfg.blocks.values():
            for succ in block.succs:
                assert succ in cfg.blocks

    def test_exit_blocks_exist(self):
        image = image_of(SOURCE)
        for name in ("main", "helper"):
            cfg = build_function_cfg(image, name)
            assert cfg.exit_blocks

    def test_call_sites_found(self):
        image = image_of(SOURCE)
        cfg = build_function_cfg(image, "main")
        assert image.symbols["helper"] in cfg.calls
        call_blocks = [b for b in cfg.blocks.values()
                       if b.call_target is not None]
        assert len(call_blocks) == 1

    def test_literal_pools_not_decoded(self):
        image = image_of(SOURCE)
        cfg = build_function_cfg(image, "main")
        base, end = image.function_range("main")
        covered = set()
        for block in cfg.blocks.values():
            for addr, instr in block.instrs:
                covered.add(addr)
        # main uses a literal pool (address of `total`); at least one
        # word inside the object is *not* decodable code.
        assert len(covered) * 2 < end - base

    def test_conditional_blocks_have_two_succs(self):
        image = image_of(SOURCE)
        cfg = build_function_cfg(image, "main")
        two_way = [b for b in cfg.blocks.values() if len(b.succs) == 2]
        assert two_way

    def test_swi0_is_terminal(self):
        image = image_of("int main(void) { return 0; }")
        cfg = build_function_cfg(image, "_start")
        terminal = [b for b in cfg.blocks.values()
                    if not b.succs and not b.is_exit]
        assert len(terminal) == 1

    def test_all_cfgs(self):
        image = image_of(SOURCE)
        cfgs = build_all_cfgs(image)
        assert set(cfgs) == {"_start", "main", "helper"}


class TestDominatorsAndLoops:
    def test_entry_dominates_everything(self):
        image = image_of(SOURCE)
        cfg = build_function_cfg(image, "main")
        dom = compute_dominators(cfg)
        for addr in cfg.blocks:
            assert cfg.entry in dom[addr]

    def test_loop_detected_with_bound(self):
        image = image_of(SOURCE)
        cfg = build_function_cfg(image, "main")
        loops = resolve_bounds(cfg, image.loop_bounds, image.loop_totals)
        assert len(loops) == 1
        loop = next(iter(loops.values()))
        assert loop.bound == 10
        assert loop.back_edges
        assert loop.entry_edges

    def test_continue_creates_extra_back_edge(self):
        # `continue` in a for loop branches to the update block, which
        # shares the single back edge; in a while loop it adds one.
        source = """
        int main(void) {
            int i = 0;
            int t = 0;
            #pragma loopbound 10
            while (i < 10) {
                i = i + 1;
                if (i & 1) { continue; }
                t = t + i;
            }
            return t;
        }
        """
        image = image_of(source)
        cfg = build_function_cfg(image, "main")
        loops = find_natural_loops(cfg)
        loop = next(iter(loops.values()))
        assert len(loop.back_edges) == 2

    def test_nested_loops(self):
        source = """
        int main(void) {
            int i; int j; int t = 0;
            for (i = 0; i < 4; i++) {
                for (j = 0; j < 5; j++) { t += 1; }
            }
            return t;
        }
        """
        image = image_of(source)
        cfg = build_function_cfg(image, "main")
        loops = resolve_bounds(cfg, image.loop_bounds, image.loop_totals)
        bounds = sorted(l.bound for l in loops.values())
        assert bounds == [4, 5]
        # The inner loop's body is a subset of the outer loop's body.
        by_size = sorted(loops.values(), key=lambda l: len(l.body))
        assert by_size[0].body < by_size[1].body

    def test_missing_bound_raises(self):
        source = """
        int main(void) {
            int i = 10;
            while (i) { i = i - 1; }
            return 0;
        }
        """
        image = image_of(source)
        cfg = build_function_cfg(image, "main")
        with pytest.raises(LoopError):
            resolve_bounds(cfg, image.loop_bounds, image.loop_totals)

    def test_total_only_bound_accepted(self):
        source = """
        int main(void) {
            int i = 10;
            #pragma loopbound_total 10
            while (i) { i = i - 1; }
            return 0;
        }
        """
        image = image_of(source)
        cfg = build_function_cfg(image, "main")
        loops = resolve_bounds(cfg, image.loop_bounds, image.loop_totals)
        loop = next(iter(loops.values()))
        assert loop.bound is None
        assert loop.bound_total == 10


class TestStackAnalysis:
    def test_frame_bytes(self):
        image = image_of(SOURCE)
        cfgs = build_all_cfgs(image)
        # Every mini-C function pushes lr (4 bytes) at minimum.
        assert frame_bytes(cfgs["helper"]) >= 4
        assert frame_bytes(cfgs["main"]) > frame_bytes(cfgs["_start"])

    def test_depth_includes_callees(self):
        image = image_of(SOURCE)
        cfgs = build_all_cfgs(image)
        entry_by_addr = {c.entry: n for n, c in cfgs.items()}
        depth_main = max_stack_depth(cfgs, "main", entry_by_addr)
        depth_helper = max_stack_depth(cfgs, "helper", entry_by_addr)
        assert depth_main > depth_helper

    def test_stack_region_below_top(self):
        from repro.memory.regions import STACK_TOP
        image = image_of(SOURCE)
        cfgs = build_all_cfgs(image)
        entry_by_addr = {c.entry: n for n, c in cfgs.items()}
        lo, hi = stack_region(cfgs, "_start", entry_by_addr)
        assert hi == STACK_TOP
        assert lo < hi

    def test_recursion_rejected(self):
        source = """
        int fact(int n) {
            if (n <= 1) { return 1; }
            return n * fact(n - 1);
        }
        int main(void) { return fact(5); }
        """
        image = image_of(source)
        cfgs = build_all_cfgs(image)
        entry_by_addr = {c.entry: n for n, c in cfgs.items()}
        with pytest.raises(StackAnalysisError):
            max_stack_depth(cfgs, "main", entry_by_addr)
