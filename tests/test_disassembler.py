"""Disassembler formatting and assembler round-trips through text."""

from hypothesis import given

from repro.isa import assemble, decode, format_instr
from repro.isa.disassembler import disassemble_words

from .test_isa_encoding import arbitrary_instr, roundtrip


class TestFormatting:
    def test_representative_lines(self):
        from repro.isa import instruction as ins
        from repro.isa.opcodes import Cond, Op
        cases = [
            (ins.movi(0, 5), "mov r0, #5"),
            (ins.add_r(1, 2, 3), "add r1, r2, r3"),
            (ins.sub3(1, 2, 3), "sub r1, r2, #3"),
            (ins.alu(Op.MUL, 4, 5), "mul r4, r5"),
            (ins.shift_i(Op.LSLI, 0, 1, 4), "lsl r0, r1, #4"),
            (ins.mem_i(Op.LDRWI, 0, 1, 8), "ldr r0, [r1, #8]"),
            (ins.mem_r(Op.LDRSH_R, 0, 1, 2), "ldrsh r0, [r1, r2]"),
            (ins.ldr_sp(3, 16), "ldr r3, [sp, #16]"),
            (ins.add_sp_i(3, 8), "add r3, sp, #8"),
            (ins.sp_adjust(-32), "sub sp, #32"),
            (ins.push((4,), lr=True), "push {r4, lr}"),
            (ins.pop((4,), pc=True), "pop {r4, pc}"),
            (ins.bcc(Cond.NE, 0x100), "bne 0x100"),
            (ins.b(0x40), "b 0x40"),
            (ins.bl(0x4000), "bl 0x4000"),
            (ins.bx(14), "bx lr"),
            (ins.swi(0), "swi #0"),
            (ins.nop(), "nop"),
        ]
        for instr, expected in cases:
            assert format_instr(instr) == expected

    def test_symbolic_literal(self):
        from repro.isa import instruction as ins
        assert format_instr(ins.ldr_pc(2, target="pool")) == \
            "ldr r2, =pool"


@given(arbitrary_instr())
def test_text_roundtrip(instr):
    """format -> parse -> encode must reproduce the instruction."""
    text = format_instr(instr)
    code, _symbols = assemble(text)
    halfword = int.from_bytes(code[0:2], "little")
    nxt = int.from_bytes(code[2:4], "little") if len(code) >= 4 else None
    decoded = decode(halfword, 0, nxt)
    assert decoded == instr


def test_disassemble_words_walks_bl_pairs():
    from repro.isa import instruction as ins
    from repro.isa.encoding import encode
    words = []
    for instr in (ins.movi(0, 1), ins.bl(0x100), ins.nop()):
        words.extend(encode(instr, 2 * len(words)))
    listing = list(disassemble_words(words, 0))
    assert [addr for addr, _ in listing] == [0, 2, 6]
