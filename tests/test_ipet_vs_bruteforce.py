"""IPET vs. exhaustive path enumeration on random CFGs.

For loop-free DAGs, the WCET is the longest entry-to-exit path; IPET must
find exactly that.  For single-loop CFGs, brute force unrolls the loop up
to its bound.  This pins the ILP encoding (flow conservation, edge costs,
bound constraints) against an independent formulation.
"""

from hypothesis import given, settings, strategies as st

from repro.wcet.ipet import solve_function_ipet
from repro.wcet.loops import find_natural_loops

from .test_wcet_ipet import make_cfg


def longest_path_dag(edges, costs, edge_costs, entry, exits):
    """Exhaustive longest path on a DAG (memoised DFS)."""
    succs = {}
    for src, dst in edges:
        succs.setdefault(src, []).append(dst)
    memo = {}

    def best_from(node):
        if node in memo:
            return memo[node]
        base = costs.get(node, 0)
        best = base if node in exits else None
        for succ in succs.get(node, ()):
            tail = best_from(succ)
            if tail is None:
                continue
            candidate = base + edge_costs.get((node, succ), 0) + tail
            if best is None or candidate > best:
                best = candidate
        memo[node] = best
        return best

    return best_from(entry)


@st.composite
def random_dag(draw):
    """Random layered DAG with 3-9 nodes, entry 0, all sinks are exits."""
    n = draw(st.integers(3, 9))
    nodes = list(range(n))
    edges = set()
    for src in range(n - 1):
        fanout = draw(st.integers(1, min(3, n - 1 - src)))
        targets = draw(st.lists(
            st.integers(src + 1, n - 1),
            min_size=fanout, max_size=fanout, unique=True))
        for dst in targets:
            edges.add((src, dst))
    # Make every node reachable: link orphans from node 0.
    reachable = {0}
    for src, dst in sorted(edges):
        if src in reachable:
            reachable.add(dst)
    for node in nodes[1:]:
        if node not in reachable:
            edges.add((0, node))
            reachable.add(node)
    succs = {s for s, _ in edges}
    exits = {node for node in nodes if node not in succs}
    costs = {node: draw(st.integers(0, 50)) for node in nodes}
    edge_costs = {}
    for edge in sorted(edges):
        if draw(st.booleans()):
            edge_costs[edge] = draw(st.integers(1, 10))
    return sorted(edges), costs, edge_costs, exits


@settings(max_examples=80, deadline=None)
@given(random_dag())
def test_ipet_equals_longest_path_on_dags(dag):
    edges, costs, edge_costs, exits = dag
    cfg = make_cfg(edges, entry=0, exits=exits)
    result = solve_function_ipet(cfg, costs, edge_costs, {})
    expected = longest_path_dag(edges, costs, edge_costs, 0, exits)
    assert result.wcet == expected


@settings(max_examples=40, deadline=None)
@given(
    body_cost=st.integers(1, 30),
    header_cost=st.integers(0, 10),
    bound=st.integers(0, 12),
    back_extra=st.integers(0, 5),
)
def test_ipet_single_loop_matches_unrolling(body_cost, header_cost,
                                            bound, back_extra):
    # 0 -> 2(header) -> 4(body) -> 2 ... -> 6(exit)
    cfg = make_cfg([(0, 2), (2, 4), (4, 2), (2, 6)], entry=0, exits={6})
    loops = find_natural_loops(cfg)
    loops[2].bound = bound
    costs = {0: 3, 2: header_cost, 4: body_cost, 6: 2}
    edge_costs = {(4, 2): back_extra}
    result = solve_function_ipet(cfg, costs, edge_costs, loops)
    expected = (3 + 2
                + (bound + 1) * header_cost
                + bound * body_cost
                + bound * back_extra)
    assert result.wcet == expected
