"""Shared test helpers: compile-and-run mini-C snippets."""

from repro.link import link
from repro.memory import SystemConfig
from repro.minic import compile_source
from repro.sim import simulate


def run_main(source, config=None, spm_objects=(), spm_size=0, **sim_kwargs):
    """Compile *source*, run ``main`` and return the SimResult."""
    compiled = compile_source(source)
    image = link(compiled.program, spm_size=spm_size,
                 spm_objects=spm_objects)
    return simulate(image, config or SystemConfig.uncached(), **sim_kwargs)


def returns(source, **kwargs):
    """Exit code of running *source* (i.e. main's return value & 0xff...)."""
    return run_main(source, **kwargs).exit_code


def expr_value(expression, prelude=""):
    """Evaluate a mini-C int expression via compile+simulate.

    The value is printed through the console to preserve all 32 bits.
    """
    source = f"""
    {prelude}
    int main(void) {{
        __print_int({expression});
        return 0;
    }}
    """
    result = run_main(source)
    return int(result.console[0])
