"""Differential tests: the fast engine vs. the recording loop.

The simulator keeps two interpreters over one machine model — the
compiled step-closure engine (:mod:`repro.sim.engine`) for plain timing
runs and the recording loop for ``profile``/``record_misses`` runs.
These tests run **every registered benchmark** through **every hierarchy
shape** (uncached, scratchpad, L1, hybrid SPM+L1, L1+L2, split I/D, plus
a set-associative and an instruction-only L1) on both engines and assert
the observable results are identical: cycles, instruction counts, exit
codes, console output, and per-level hit/miss statistics.
"""

import pytest

from repro.benchmarks import BENCHMARKS, get
from repro.isa.opcodes import Cond
from repro.link import link
from repro.memory import CacheConfig, SystemConfig
from repro.minic import compile_source
from repro.sim import Simulator
from repro.sim.simulator import _COND_DISPATCH

SPM_SIZE = 512

SHAPES = {
    "uncached": lambda: SystemConfig.uncached(),
    "spm": lambda: SystemConfig.scratchpad(SPM_SIZE),
    "l1": lambda: SystemConfig.cached(CacheConfig(size=512)),
    "l1-2way": lambda: SystemConfig.cached(CacheConfig(size=512, assoc=2)),
    "icache": lambda: SystemConfig.cached(
        CacheConfig(size=512, unified=False)),
    "hybrid": lambda: SystemConfig.hybrid(SPM_SIZE, CacheConfig(size=256)),
    "l1+l2": lambda: SystemConfig.two_level(
        CacheConfig(size=256), CacheConfig(size=1024)),
    "split-i/d": lambda: SystemConfig.split_l1(
        CacheConfig(size=256, unified=False), CacheConfig(size=256)),
}

_PROGRAMS = {}
_IMAGES = {}


def _program(bench):
    if bench not in _PROGRAMS:
        _PROGRAMS[bench] = compile_source(get(bench).source()).program
    return _PROGRAMS[bench]


def _image(bench, spm: bool):
    """Linked image; with *spm*, smallest objects fill the scratchpad."""
    key = (bench, spm)
    if key not in _IMAGES:
        program = _program(bench)
        if not spm:
            _IMAGES[key] = link(program)
        else:
            chosen, used = [], 0
            for name, _kind, size in sorted(program.memory_objects(),
                                            key=lambda o: (o[2], o[0])):
                aligned = (size + 3) & ~3
                if used + aligned <= SPM_SIZE:
                    chosen.append(name)
                    used += aligned
            _IMAGES[key] = link(program, spm_size=SPM_SIZE,
                                spm_objects=chosen)
    return _IMAGES[key]


def _stats_tuple(stats):
    return (stats.fetch_hits, stats.fetch_misses, stats.read_hits,
            stats.read_misses, stats.write_hits, stats.write_misses)


@pytest.mark.parametrize("shape", sorted(SHAPES))
@pytest.mark.parametrize("bench", sorted(BENCHMARKS))
def test_engines_agree(bench, shape):
    config = SHAPES[shape]()
    image = _image(bench, spm=bool(config.spm_size))

    fast = Simulator(image, config).run()
    recorded = Simulator(image, config).run(record_misses=True)

    assert fast.cycles == recorded.cycles
    assert fast.instructions == recorded.instructions
    assert fast.exit_code == recorded.exit_code
    assert fast.console == recorded.console
    assert set(fast.level_stats) == set(recorded.level_stats)
    for level in fast.level_stats:
        assert _stats_tuple(fast.level_stats[level]) == \
            _stats_tuple(recorded.level_stats[level]), level


def test_fast_engine_reports_no_recording_fields():
    image = _image("crc", spm=False)
    result = Simulator(image, SystemConfig.cached(CacheConfig(size=512))
                       ).run()
    assert result.fetch_counts == {}
    assert result.fetch_misses == {}


def test_flags_visible_after_fast_run():
    # The engine keeps flags in its own encoding; the simulator must
    # translate them back to the documented 0/1 attributes.
    image = _image("crc", spm=False)
    sim = Simulator(image, SystemConfig.uncached())
    sim.run()
    assert all(flag in (0, 1) for flag in (sim.n, sim.z, sim.c, sim.v))


class TestCondDispatch:
    """The Cond -> predicate table must match the ARM if-chain."""

    @staticmethod
    def _reference(cond, n, z, c, v):
        if cond == Cond.EQ:
            return z == 1
        if cond == Cond.NE:
            return z == 0
        if cond == Cond.HS:
            return c == 1
        if cond == Cond.LO:
            return c == 0
        if cond == Cond.MI:
            return n == 1
        if cond == Cond.PL:
            return n == 0
        if cond == Cond.VS:
            return v == 1
        if cond == Cond.VC:
            return v == 0
        if cond == Cond.HI:
            return c == 1 and z == 0
        if cond == Cond.LS:
            return c == 0 or z == 1
        if cond == Cond.GE:
            return n == v
        if cond == Cond.LT:
            return n != v
        if cond == Cond.GT:
            return z == 0 and n == v
        if cond == Cond.LE:
            return z == 1 or n != v
        return True

    def test_all_conditions_all_flag_states(self):
        for cond in Cond:
            for bits in range(16):
                n, z, c, v = (bits >> 3) & 1, (bits >> 2) & 1, \
                    (bits >> 1) & 1, bits & 1
                assert _COND_DISPATCH[cond](n, z, c, v) == \
                    self._reference(cond, n, z, c, v), (cond, n, z, c, v)
