"""Multi-host serving: transport, cluster client, sharded store (PR 10).

The cluster tier's invariant extends the serving one: **whatever
subset of daemons is reachable, every answer a client completes is
byte-identical to direct evaluation** — routed by rendezvous hash,
failed over past dead or resetting daemons, optionally hedged, and
backed by an artifact store sharded over the same hash.  Around that
sit the new robustness seams ISSUE 10 pins down:

* the ``unix:``/``tcp://`` address scheme and the HMAC-SHA256
  challenge/response gate (unauthenticated TCP peers are shed before
  the worker pool sees them);
* :class:`~repro.serve.cluster.ClusterClient` routing, health-probed
  failover and tail hedging;
* :class:`~repro.store.ShardedArtifactStore` placement, read-through
  peer fallback, read-repair, write-behind replication and per-shard
  quarantine;
* ``REPRO_FAULT_NET`` chaos (refuse / partition / slow / reset) and
  the per-process fault-counter reset across forked TCP daemon
  workers;
* the flock-based socket claim (two daemons racing one path).
"""

import json
import os
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro.serve.client import (
    ServeClient,
    ServeError,
    ServeTransportError,
    reconnect_delay,
)
from repro.serve.cluster import ClusterClient
from repro.serve.daemon import ServeDaemon
from repro.serve.protocol import canonical_request, request_key
from repro.serve.transport import (
    AddressError,
    AuthError,
    auth_digest,
    format_address,
    load_auth_key,
    parse_address,
)
from repro.serve.worker import evaluate_request
from repro.store import ArtifactStore, ShardedArtifactStore, rendezvous_rank
from repro.testing.faults import corrupt_file, reset_fault_counters

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")

KEY = b"test-cluster-secret"

TINY_SOURCE = """
int main(void) {
    int i; int acc = 0;
    for (i = 0; i < 8; i = i + 1) acc = acc + i;
    return acc & 255;
}
"""


@pytest.fixture(autouse=True)
def _no_leftover_faults(monkeypatch):
    monkeypatch.delenv("REPRO_FAULT_STORE_WRITE", raising=False)
    monkeypatch.delenv("REPRO_FAULT_UNIT", raising=False)
    monkeypatch.delenv("REPRO_FAULT_SERVE", raising=False)
    monkeypatch.delenv("REPRO_FAULT_NET", raising=False)
    reset_fault_counters()
    yield
    reset_fault_counters()


@pytest.fixture
def tcp_daemon_factory():
    """In-process TCP daemons on kernel-assigned ports."""
    daemons = []

    def spawn(**kwargs):
        kwargs.setdefault("workers", 1)
        kwargs.setdefault("cache_dir", None)
        daemon = ServeDaemon(None, listen="127.0.0.1:0", auth_key=KEY,
                             **kwargs)
        daemon.start()
        daemons.append(daemon)
        return daemon

    yield spawn
    for daemon in daemons:
        daemon.drain(timeout=10.0)


def _tcp_address(daemon) -> str:
    return format_address("tcp", daemon.tcp_address)


# ---------------------------------------------------------------------------
# Address scheme


class TestAddressScheme:
    def test_unix_scheme_and_bare_path(self):
        assert parse_address("unix:/tmp/a.sock") == \
            ("unix", "/tmp/a.sock")
        assert parse_address("/tmp/a.sock") == ("unix", "/tmp/a.sock")
        assert parse_address("relative.sock") == \
            ("unix", "relative.sock")

    def test_tcp_scheme(self):
        assert parse_address("tcp://127.0.0.1:9000") == \
            ("tcp", ("127.0.0.1", 9000))

    @pytest.mark.parametrize("bad", [
        "", None, "unix:", "tcp://", "tcp://host", "tcp://:123",
        "tcp://host:port", "http://x:1",
    ])
    def test_malformed_addresses_raise(self, bad):
        with pytest.raises(AddressError):
            parse_address(bad)

    def test_format_roundtrips(self):
        for address in ("unix:/tmp/a.sock", "tcp://127.0.0.1:9000"):
            assert format_address(*parse_address(address)) == address


# ---------------------------------------------------------------------------
# Rendezvous hashing


class TestRendezvousRank:
    NODES = ["tcp://10.0.0.1:1", "tcp://10.0.0.2:1", "tcp://10.0.0.3:1"]

    def test_deterministic_and_order_independent(self):
        keys = [f"key-{index}" for index in range(50)]
        shuffled = list(reversed(self.NODES))
        for key in keys:
            ranked = rendezvous_rank(key, self.NODES)
            assert ranked == rendezvous_rank(key, self.NODES)
            assert ranked == rendezvous_rank(key, shuffled)
            assert sorted(ranked) == sorted(self.NODES)

    def test_spreads_keys(self):
        owners = {rendezvous_rank(f"key-{index}", self.NODES)[0]
                  for index in range(100)}
        assert owners == set(self.NODES)

    def test_minimal_disruption_on_node_loss(self):
        """Removing one node only moves the keys it owned (HRW)."""
        lost = self.NODES[1]
        survivors = [node for node in self.NODES if node != lost]
        for index in range(100):
            key = f"key-{index}"
            before = rendezvous_rank(key, self.NODES)[0]
            after = rendezvous_rank(key, survivors)[0]
            if before != lost:
                assert after == before
            else:
                assert after in survivors


# ---------------------------------------------------------------------------
# Reconnect backoff schedule


class TestReconnectDelay:
    def test_schedule_is_exponential_then_capped(self):
        delays = [reconnect_delay(attempt, base=0.05, cap=0.5,
                                  jitter=0)
                  for attempt in range(1, 7)]
        assert delays == [0.05, 0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_is_bounded_by_its_cap(self):
        class FullJitter:
            @staticmethod
            def random():
                return 1.0

        worst = reconnect_delay(50, base=0.05, cap=0.5, jitter=0.1,
                                rng=FullJitter)
        assert worst == pytest.approx(0.6)
        for _ in range(100):
            delay = reconnect_delay(3, base=0.05, cap=0.5, jitter=0.1)
            assert 0.2 <= delay <= 0.3 + 1e-9

    def test_attempt_floor(self):
        assert reconnect_delay(0, jitter=0) == \
            reconnect_delay(1, jitter=0)


# ---------------------------------------------------------------------------
# Authenticated TCP transport


class TestTcpAuth:
    def test_authenticated_round_trip_and_byte_identity(
            self, tcp_daemon_factory):
        daemon = tcp_daemon_factory()
        request = {"op": "simulate", "source": TINY_SOURCE}
        with ServeClient(_tcp_address(daemon), timeout=60.0,
                         auth_key=KEY) as client:
            assert client.ping()["pong"] is True
            served = client.call(**request)
        direct = evaluate_request(canonical_request(request))
        assert json.dumps(served, sort_keys=True) == \
            json.dumps(direct, sort_keys=True)
        assert daemon.counters["auth_ok"] >= 1
        assert daemon.counters["auth_failed"] == 0

    def test_wrong_key_is_rejected_before_the_pool(
            self, tcp_daemon_factory):
        daemon = tcp_daemon_factory()
        client = ServeClient(_tcp_address(daemon), timeout=10.0,
                             auth_key=b"not-the-key", max_retries=3)
        with pytest.raises(AuthError):
            client.ping()
        client.close()
        assert daemon.counters["auth_failed"] == 1  # never retried
        assert daemon.counters["requests"] == 0
        assert daemon._pool.counters["submitted"] == 0

    def test_missing_key_fails_fast_with_a_hint(
            self, tcp_daemon_factory):
        daemon = tcp_daemon_factory()
        client = ServeClient(_tcp_address(daemon), timeout=10.0)
        with pytest.raises(AuthError, match="requires authentication"):
            client.ping()
        client.close()

    def test_garbage_during_handshake_is_shed(self, tcp_daemon_factory):
        daemon = tcp_daemon_factory()
        raw = socket.create_connection(daemon.tcp_address, timeout=10.0)
        try:
            raw.sendall(b'{"auth": "response", "digest": "beef"}\n')
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if not raw.recv(4096):
                    break
        finally:
            raw.close()
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline \
                and not daemon.counters["auth_failed"]:
            time.sleep(0.01)
        assert daemon.counters["auth_failed"] == 1
        assert daemon.counters["requests"] == 0

    def test_digest_is_keyed_hmac(self):
        nonce = "00" * 32
        assert auth_digest(b"a", nonce) != auth_digest(b"b", nonce)
        assert auth_digest(b"a", nonce) == auth_digest(b"a", nonce)

    def test_tcp_listen_requires_auth_key(self):
        with pytest.raises(ValueError, match="auth key"):
            ServeDaemon(None, listen="127.0.0.1:0")

    def test_daemon_needs_some_transport(self):
        with pytest.raises(ValueError):
            ServeDaemon(None)

    def test_load_auth_key_strips_and_rejects_empty(self, tmp_path):
        path = tmp_path / "key"
        path.write_bytes(b"  secret-bytes\n\n")
        assert load_auth_key(str(path)) == b"secret-bytes"
        (tmp_path / "empty").write_bytes(b" \n")
        with pytest.raises(AuthError):
            load_auth_key(str(tmp_path / "empty"))


# ---------------------------------------------------------------------------
# ClusterClient: routing, failover, hedging


class TestClusterClient:
    def _cluster(self, tcp_daemon_factory, count=2, **kwargs):
        daemons = [tcp_daemon_factory() for _ in range(count)]
        addresses = [_tcp_address(daemon) for daemon in daemons]
        client = ClusterClient(addresses, auth_key=KEY, timeout=60.0,
                               **kwargs)
        return daemons, addresses, client

    def test_validates_addresses(self):
        with pytest.raises(ValueError):
            ClusterClient([])
        with pytest.raises(ValueError):
            ClusterClient(["tcp://h:1", "tcp://h:1"])

    def test_routes_identical_requests_to_one_daemon(
            self, tcp_daemon_factory):
        daemons, addresses, client = self._cluster(tcp_daemon_factory)
        request = {"op": "sleep", "seconds": 0.01}
        with client:
            first = client.call(**request)
            second = client.call(**request)
        assert first == second
        owner = rendezvous_rank(
            request_key(canonical_request(request)), addresses)[0]
        owner_daemon = daemons[addresses.index(owner)]
        other = daemons[1 - addresses.index(owner)]
        # Both requests landed on the ranked owner: the second was a
        # memo hit there, and the peer saw no traffic at all.
        assert owner_daemon.counters["requests"] == 2
        assert owner_daemon.counters["memo_hits"] == 1
        assert other.counters["requests"] == 0

    def test_fails_over_to_surviving_daemon(self, tcp_daemon_factory):
        daemons, addresses, client = self._cluster(tcp_daemon_factory)
        # A request owned by daemon 0, found by scanning the keyspace.
        request = None
        for index in range(100):
            candidate = {"op": "sleep", "seconds": 0.01 + index / 1e4}
            key = request_key(canonical_request(candidate))
            if rendezvous_rank(key, addresses)[0] == addresses[0]:
                request = candidate
                break
        assert request is not None
        daemons[0].drain(timeout=10.0)  # the owner goes away
        with client:
            result = client.call(**request)
        assert result == evaluate_request(canonical_request(request))
        assert client.counters["client_failovers"] >= 1
        assert daemons[1].counters["ok"] >= 1
        assert addresses[0] not in client.healthy_addresses()

    def test_recovers_when_every_daemon_is_down_then_back(
            self, tcp_daemon_factory):
        daemon = tcp_daemon_factory()
        address = _tcp_address(daemon)
        client = ClusterClient([address], auth_key=KEY, timeout=10.0)
        assert client.ping()["pong"] is True
        daemon.drain(timeout=10.0)
        # The established connection still answers pings while the
        # daemon drains (health checks stay cheap); evaluation work is
        # rejected with ``draining``, which the cluster treats as the
        # daemon being gone.
        with pytest.raises(ServeTransportError):
            client.response("sleep", seconds=0.01)
        assert not client.healthy_addresses()
        client.close()

    def test_hedges_to_next_ranked_daemon(self, tcp_daemon_factory):
        daemons, addresses, client = self._cluster(
            tcp_daemon_factory, hedge_after=0.0)
        request = {"op": "sleep", "seconds": 0.2}
        with client:
            result = client.call(**request)
        assert result == {"slept": 0.2}
        assert client.counters["client_hedges"] >= 1
        # Purity makes the duplicate harmless: both daemons may have
        # answered, but any completed answer is the same bytes.
        total_ok = sum(d.counters["ok"] for d in daemons)
        assert total_ok >= 1

    def test_counters_aggregate_member_reconnects(
            self, tcp_daemon_factory):
        daemons, addresses, client = self._cluster(tcp_daemon_factory)
        with client:
            client.ping()
            merged = client.all_counters()
        assert set(merged) >= {"client_reconnects", "client_failovers",
                               "client_hedges", "client_probes"}

    def test_stats_reports_unreachable_daemons_as_none(
            self, tcp_daemon_factory):
        daemons, addresses, client = self._cluster(tcp_daemon_factory)
        daemons[1].drain(timeout=10.0)
        with client:
            stats = client.stats()
        assert stats[addresses[0]]["pid"] == os.getpid()
        assert stats[addresses[1]] is None


# ---------------------------------------------------------------------------
# Sharded artifact store


class TestShardedArtifactStore:
    def _roots(self, tmp_path, count=3):
        return [str(tmp_path / f"shard{index}") for index in range(count)]

    def test_validates_roots(self, tmp_path):
        with pytest.raises(ValueError):
            ShardedArtifactStore([])
        root = str(tmp_path / "a")
        with pytest.raises(ValueError):
            ShardedArtifactStore([root, root])

    def test_placement_follows_rendezvous_rank(self, tmp_path):
        roots = self._roots(tmp_path)
        store = ShardedArtifactStore(roots)
        try:
            for index in range(20):
                key = ("k", index)
                store.store(key, {"value": index})
                owner = store.ranked_for(key)[0]
                assert os.path.exists(store.path_for(key))
                assert store.path_for(key).startswith(owner)
                assert store.load(key) == {"value": index}
        finally:
            store.close()
        # With replicas=1 exactly one shard holds each key.
        singles = sum(ArtifactStore(root).stats()["entries"]
                      for root in roots)
        assert singles == 20

    def test_write_behind_replication(self, tmp_path):
        roots = self._roots(tmp_path, count=2)
        store = ShardedArtifactStore(roots, replicas=2)
        try:
            store.store(("replicated",), {"payload": 7})
            store.flush()
            for root in roots:
                assert ArtifactStore(root).load(("replicated",)) == \
                    {"payload": 7}
            assert store._extra["replica_writes"] == 1
        finally:
            store.close()

    def test_replicas_clamped_to_shard_count(self, tmp_path):
        store = ShardedArtifactStore(self._roots(tmp_path, 2),
                                     replicas=5)
        assert store.replicas == 2
        store.close()

    def test_read_through_peer_and_read_repair(self, tmp_path):
        roots = self._roots(tmp_path)
        store = ShardedArtifactStore(roots)
        try:
            key = ("migrated",)
            ranked = store.ranked_for(key)
            peer = ranked[1]  # not the owner
            ArtifactStore(peer).store(key, {"found": True})
            assert store.load(key) == {"found": True}
            assert store._extra["peer_hits"] == 1
            assert store._extra["read_repairs"] == 1
            # Repaired into the owner shard: the next load is local.
            assert ArtifactStore(ranked[0]).load(key) == {"found": True}
        finally:
            store.close()

    def test_corrupt_owner_copy_served_from_replica(self, tmp_path):
        """One corrupted replica quarantines locally; the value
        survives through the peer copy, byte-for-byte."""
        roots = self._roots(tmp_path, count=2)
        store = ShardedArtifactStore(roots, replicas=2)
        try:
            key = ("precious",)
            store.store(key, {"bytes": list(range(16))})
            store.flush()
            corrupt_file(store.path_for(key))  # the owner's copy
            assert store.load(key) == {"bytes": list(range(16))}
            owner_root = store.ranked_for(key)[0]
            owner = store.shard_for(key)
            assert owner.counters["corrupt"] == 1
            assert os.listdir(os.path.join(owner_root, "corrupt"))
            assert store.counters["corrupt"] == 1
            assert store._extra["peer_hits"] == 1
        finally:
            store.close()

    def test_missing_key_is_a_clean_miss(self, tmp_path):
        store = ShardedArtifactStore(self._roots(tmp_path))
        try:
            assert store.load(("absent",)) is None
        finally:
            store.close()

    def test_stats_aggregate_per_shard(self, tmp_path):
        roots = self._roots(tmp_path, count=2)
        store = ShardedArtifactStore(roots, replicas=2)
        try:
            for index in range(4):
                store.store(("s", index), index)
            store.flush()
            stats = store.stats()
            assert stats["shards"] == 2
            assert stats["replicas"] == 2
            assert stats["entries"] == 8  # 4 keys x 2 copies
            assert len(stats["shard_stats"]) == 2
        finally:
            store.close()


# ---------------------------------------------------------------------------
# Network chaos (REPRO_FAULT_NET) against live TCP daemons


class TestNetChaos:
    def test_refused_connections_are_counted_and_survived(
            self, tcp_daemon_factory, monkeypatch):
        daemon = tcp_daemon_factory()
        monkeypatch.setenv("REPRO_FAULT_NET", "refuse@1")
        reset_fault_counters()
        client = ServeClient(_tcp_address(daemon), timeout=10.0,
                             auth_key=KEY, max_retries=4, jitter=0)
        assert client.ping()["pong"] is True  # retried past the refuse
        client.close()
        assert daemon.counters["net_refused"] == 1
        assert daemon.counters["auth_ok"] >= 1

    def test_reset_mid_stream_fails_fast_and_recovers(
            self, tcp_daemon_factory, monkeypatch):
        daemon = tcp_daemon_factory()
        monkeypatch.setenv("REPRO_FAULT_NET", "reset@2")
        reset_fault_counters()
        client = ServeClient(_tcp_address(daemon), timeout=30.0,
                             auth_key=KEY, max_retries=4, jitter=0)
        assert client.call("sleep", seconds=0.01) == {"slept": 0.01}
        t0 = time.monotonic()
        # Response 2 is aborted; the resend must recover promptly from
        # the daemon's memo — never by waiting out the socket timeout.
        assert client.call("sleep", seconds=0.02) == {"slept": 0.02}
        assert time.monotonic() - t0 < 10.0
        assert client.counters["client_reconnects"] >= 1
        client.close()

    def test_partition_blackholes_until_client_timeout(
            self, tcp_daemon_factory, monkeypatch):
        daemon = tcp_daemon_factory()
        monkeypatch.setenv("REPRO_FAULT_NET", "partition@1+")
        reset_fault_counters()
        client = ServeClient(_tcp_address(daemon), timeout=0.5,
                             auth_key=KEY, max_retries=0)
        t0 = time.monotonic()
        with pytest.raises(ServeTransportError):
            client.ping()
        elapsed = time.monotonic() - t0
        assert 0.4 <= elapsed < 5.0  # the socket timeout, not a hang
        client.close()

    def test_slow_link_delays_but_answers(self, tcp_daemon_factory,
                                          monkeypatch):
        daemon = tcp_daemon_factory()
        monkeypatch.setenv("REPRO_FAULT_NET", "slow@1")
        reset_fault_counters()
        client = ServeClient(_tcp_address(daemon), timeout=30.0,
                             auth_key=KEY)
        t0 = time.monotonic()
        assert client.ping()["pong"] is True
        assert time.monotonic() - t0 >= 0.2
        client.close()

    def test_cluster_survives_one_resetting_daemon(
            self, tcp_daemon_factory, monkeypatch):
        """reset@1+ aborts every response write in this process — both
        in-process daemons share the counter, so the first transport
        error must fail over fast and the caller sees one structured
        error, never a hang."""
        daemons = [tcp_daemon_factory() for _ in range(2)]
        addresses = [_tcp_address(daemon) for daemon in daemons]
        client = ClusterClient(addresses, auth_key=KEY, timeout=5.0,
                               max_retries=1)
        assert client.ping()["pong"] is True
        monkeypatch.setenv("REPRO_FAULT_NET", "reset@1+")
        reset_fault_counters()
        t0 = time.monotonic()
        with pytest.raises(ServeTransportError):
            client.response("sleep", seconds=0.01)
        assert time.monotonic() - t0 < 60.0
        assert client.counters["client_failovers"] >= 1
        monkeypatch.delenv("REPRO_FAULT_NET")
        client.close()


# ---------------------------------------------------------------------------
# Fault counters across forked TCP daemon workers


class TestForkCounterIsolation:
    def test_net_counter_is_daemon_side_not_worker_side(
            self, tcp_daemon_factory, monkeypatch):
        """``@n`` counts the daemon's response writes.  The pool's
        forked workers (re-forked with inherited environment) must not
        consume or skew the count: evaluations run in workers, but the
        n-th *send* is still the n-th."""
        daemon = tcp_daemon_factory(workers=2)
        monkeypatch.setenv("REPRO_FAULT_NET", "reset@3")
        reset_fault_counters()
        client = ServeClient(_tcp_address(daemon), timeout=30.0,
                             auth_key=KEY, max_retries=4, jitter=0)
        # Two pool-evaluated requests: sends 1 and 2, clean.
        assert client.call("sleep", seconds=0.01) == {"slept": 0.01}
        assert client.call("sleep", seconds=0.02) == {"slept": 0.02}
        assert client.counters["client_reconnects"] == 0
        # Send 3 resets; the resend (send 4) serves from the memo.
        assert client.call("sleep", seconds=0.03) == {"slept": 0.03}
        assert client.counters["client_reconnects"] == 1
        # Send 5: past the one-shot trigger, clean again.
        assert client.call("sleep", seconds=0.04) == {"slept": 0.04}
        client.close()

    def test_serve_fault_drop_holds_for_inet_daemons(
            self, tcp_daemon_factory, monkeypatch):
        daemon = tcp_daemon_factory(workers=2)
        monkeypatch.setenv("REPRO_FAULT_SERVE", "drop@2")
        reset_fault_counters()
        client = ServeClient(_tcp_address(daemon), timeout=30.0,
                             auth_key=KEY, max_retries=4, jitter=0)
        assert client.call("sleep", seconds=0.05) == {"slept": 0.05}
        assert client.call("sleep", seconds=0.06) == {"slept": 0.06}
        assert client.counters["client_reconnects"] == 1
        client.close()


# ---------------------------------------------------------------------------
# Socket-claim lockfile (two racing subprocesses)


CLAIM_RACER = r"""
import sys
sys.path.insert(0, {src!r})
from repro.serve.daemon import ServeDaemon

daemon = ServeDaemon({path!r}, workers=1, cache_dir=None)
try:
    daemon.start()
except RuntimeError:
    print("LOST", flush=True)
    sys.exit(21)
print("WON", flush=True)
import time
time.sleep(30)
"""


class TestSocketClaimRace:
    def test_two_racers_one_socket_exactly_one_wins(self, tmp_path):
        """Regression for the PR-9 probe-then-unlink race: two daemons
        starting concurrently on one dead socket path could both bind.
        The flock claim makes exactly one win, every time."""
        socket_path = str(tmp_path / "contested.sock")
        # A stale socket file from a "crashed" daemon sweetens the race:
        # both racers must decide it is dead and try to take the path.
        stale = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        stale.bind(socket_path)
        stale.close()  # bound then closed: path exists, nobody listens
        script = CLAIM_RACER.format(src=SRC, path=socket_path)
        racers = [subprocess.Popen([sys.executable, "-c", script],
                                   stdout=subprocess.PIPE,
                                   stderr=subprocess.STDOUT, text=True)
                  for _ in range(2)]
        verdicts = {}
        deadline = time.monotonic() + 60.0
        try:
            while len(verdicts) < 2 and time.monotonic() < deadline:
                for index, racer in enumerate(racers):
                    if index in verdicts or racer.stdout is None:
                        continue
                    line = racer.stdout.readline().strip()
                    if line:
                        verdicts[index] = line
            assert sorted(verdicts.values()) == ["LOST", "WON"], \
                f"verdicts: {verdicts}"
            winner = [racers[i] for i, v in verdicts.items()
                      if v == "WON"][0]
            loser = [racers[i] for i, v in verdicts.items()
                     if v == "LOST"][0]
            assert loser.wait(timeout=30) == 21
            # The winner holds the lock and actually serves.
            with ServeClient(socket_path, timeout=10.0) as client:
                assert client.ping()["pong"] is True
            assert os.path.exists(socket_path + ".lock")
        finally:
            for racer in racers:
                if racer.poll() is None:
                    racer.send_signal(signal.SIGKILL)
                racer.wait()

    def test_lock_released_after_drain(self, tmp_path):
        socket_path = str(tmp_path / "reusable.sock")
        for _ in range(2):  # claim, drain, claim again: no residue
            daemon = ServeDaemon(socket_path, workers=1,
                                 cache_dir=None)
            daemon.start()
            daemon.drain(timeout=10.0)
            assert not os.path.exists(socket_path)
            assert not os.path.exists(socket_path + ".lock")


# ---------------------------------------------------------------------------
# CLI surfaces: repro-cc cache stats --daemon tcp://, repro-serve --listen


class TestCliSurfaces:
    def test_cache_stats_over_tcp_daemon(self, tcp_daemon_factory,
                                         tmp_path, capsys):
        from repro.cli import main
        daemon = tcp_daemon_factory()
        key_path = tmp_path / "auth.key"
        key_path.write_bytes(KEY + b"\n")
        rc = main(["cache", "stats", "--daemon", _tcp_address(daemon),
                   "--auth-key", str(key_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert _tcp_address(daemon) in out

    def test_cache_stats_daemon_auth_failure_is_reported(
            self, tcp_daemon_factory, tmp_path, capsys):
        from repro.cli import main
        daemon = tcp_daemon_factory()
        key_path = tmp_path / "wrong.key"
        key_path.write_bytes(b"wrong\n")
        with pytest.raises(SystemExit) as failure:
            main(["cache", "stats", "--daemon", _tcp_address(daemon),
                  "--auth-key", str(key_path)])
        assert "cache:" in str(failure.value)

    def test_serve_cli_rejects_listen_without_key(self):
        from repro.serve.cli import main as serve_main
        rc = serve_main(["--socket", "none",
                         "--listen", "127.0.0.1:0"])
        assert rc == 2

    def test_serve_cli_rejects_no_transport(self):
        from repro.serve.cli import main as serve_main
        rc = serve_main(["--socket", "none"])
        assert rc == 2
