"""Structure checks for the unified benchmark suite.

The suite's *numbers* are machine-dependent and guarded by the CI
bench-smoke job (``bench_suite.py --check``); these tests assert the
semantic anchors and report shapes so a refactor cannot silently drop a
measured point or change what a run simulates.
"""

import json
import sys
from pathlib import Path

import pytest

_BENCH_DIR = Path(__file__).parent.parent / "benchmarks"
sys.path.insert(0, str(_BENCH_DIR))

import bench_suite  # noqa: E402


@pytest.fixture(scope="module")
def sim_report():
    return bench_suite.bench_simulator(rounds=1)


EXECUTE_LABELS = ("uncached", "l1", "l1+l2", "split-i/d")


def test_simulator_report_shape(sim_report):
    expected = set(EXECUTE_LABELS)
    expected |= {f"{label} (replay)" for label in EXECUTE_LABELS}
    expected |= {"trace-record", "sweep-x8 (replay)",
                 "geometry-grid (replay)", "trace-rle-load"}
    assert set(sim_report) == expected
    for entry in sim_report.values():
        assert entry["instructions_per_sec"] > 0
        assert entry["seconds"] > 0
    assert sim_report["sweep-x8 (replay)"]["points"] == 8
    assert sim_report["geometry-grid (replay)"]["points"] == 32
    assert sim_report["trace-rle-load"]["rle_bytes"] \
        < sim_report["trace-rle-load"]["ops_bytes"]
    assert sim_report["trace-record"]["accesses"] > 0


def test_simulator_semantic_anchors(sim_report):
    committed = json.loads(
        (_BENCH_DIR / "BENCH_hierarchy.json").read_text())
    for label in EXECUTE_LABELS:
        # Cycles and instruction counts are simulation facts, not
        # timings: they must match the committed trajectory baseline —
        # on the execute rows and on their trace-replay twins.
        entry = sim_report[label]
        assert entry["sim_cycles"] == committed[label]["sim_cycles"]
        assert entry["instructions"] == committed[label]["instructions"]
        replayed = sim_report[f"{label} (replay)"]
        assert replayed["sim_cycles"] == committed[label]["sim_cycles"]


def test_wcet_report_anchors():
    report = bench_suite.bench_wcet(rounds=1)
    committed = json.loads((_BENCH_DIR / "BENCH_wcet.json").read_text())
    assert set(report) == set(committed)
    for label, entry in report.items():
        assert entry["wcet_cycles"] == committed[label]["wcet_cycles"]
        assert entry["seconds"] > 0
        # The cold round can never beat the reuse-cache-warm best.
        assert entry["cold_seconds"] >= entry["seconds"]


def test_store_report_shape():
    report = bench_suite.bench_store(rounds=1)
    entry = report["store-overhead"]
    assert entry["payload_bytes"] > 0
    assert entry["pairs"] >= 24
    assert entry["raw_seconds"] > 0
    assert entry["store_seconds"] > 0
    # The estimator is a per-pair median, so the ratio must be
    # consistent with the two totals it summarises (same cycle count).
    assert 0.5 < entry["overhead_ratio"] < 2.0


def test_wcet_points_cover_all_shapes_and_benchmarks():
    labels = {label for label, _bench, _config in bench_suite.WCET_POINTS}
    assert len(labels) == 12
    for bench in ("g721", "adpcm", "multisort"):
        for shape in ("uncached", "l1-256", "l1+l2", "split-i/d"):
            assert f"{bench}/{shape}" in labels


def test_experiments_baseline_matches_runner():
    from repro.experiments.runner import EXPERIMENTS

    committed = json.loads(
        (_BENCH_DIR / "BENCH_experiments.json").read_text())
    assert set(committed) == set(EXPERIMENTS) | {"total"}
    for entry in committed.values():
        # Individual experiments may round to 0.00 s (fig4 reuses
        # fig3's cached points entirely), but never go negative.
        assert entry["seconds"] >= 0
    assert committed["total"]["seconds"] > 0
