"""ARM flag semantics in the simulator, cross-checked against a model.

Flags drive every conditional branch, so errors here would silently warp
control flow.  The hypothesis suite runs random ALU op sequences and
compares N/Z/C/V and register values against a bit-precise Python model.
"""

from hypothesis import given, settings, strategies as st

from repro.isa import Label
from repro.isa import instruction as ins
from repro.isa.opcodes import Cond, Op
from repro.link import FunctionCode, Program, link
from repro.memory import SystemConfig
from repro.sim import Simulator

_M32 = 0xFFFFFFFF


def run_flags(setup_items):
    """Run items then capture (regs, NZCV)."""
    items = [Label("_start")] + setup_items + [ins.swi(0)]
    program = Program(functions=[FunctionCode("_start", items)])
    sim = Simulator(link(program), SystemConfig.uncached())
    sim.run()
    return sim


def load_reg(reg, value):
    """Instruction sequence materialising an arbitrary 32-bit value."""
    value &= _M32
    out = [ins.movi(reg, (value >> 24) & 0xFF)]
    for shift in (16, 8, 0):
        out.append(ins.shift_i(Op.LSLI, reg, reg, 8))
        byte = (value >> shift) & 0xFF
        if byte:
            out.append(ins.addi(reg, byte))
    return out


class TestAddSubFlags:
    def test_add_carry_out(self):
        sim = run_flags(load_reg(0, 0xFFFFFFFF) + load_reg(1, 1)
                        + [ins.add_r(0, 0, 1)])
        assert sim.regs[0] == 0
        assert (sim.z, sim.c, sim.v) == (1, 1, 0)

    def test_add_signed_overflow(self):
        sim = run_flags(load_reg(0, 0x7FFFFFFF) + load_reg(1, 1)
                        + [ins.add_r(0, 0, 1)])
        assert (sim.n, sim.v) == (1, 1)

    def test_sub_borrow_clear_carry(self):
        sim = run_flags([ins.movi(0, 3), ins.movi(1, 5),
                         ins.sub_r(0, 0, 1)])
        assert sim.c == 0            # borrow -> C clear (ARM style)
        assert sim.n == 1

    def test_sub_no_borrow_sets_carry(self):
        sim = run_flags([ins.movi(0, 5), ins.movi(1, 3),
                         ins.sub_r(0, 0, 1)])
        assert sim.c == 1 and sim.z == 0

    def test_cmp_equal_sets_z(self):
        sim = run_flags([ins.movi(0, 9), ins.cmpi(0, 9)])
        assert sim.z == 1 and sim.c == 1

    def test_neg(self):
        sim = run_flags([ins.movi(0, 1), ins.alu(Op.NEG, 0, 0)])
        assert sim.regs[0] == 0xFFFFFFFF
        assert sim.n == 1


class TestConditionBranches:
    def condition_taken(self, cond, a, b):
        items = load_reg(0, a) + load_reg(1, b) + [
            ins.alu(Op.CMP, 0, 1),
            ins.bcc(cond, "yes"),
            ins.movi(2, 0),
            ins.b("end"),
            Label("yes"), ins.movi(2, 1),
            Label("end"),
        ]
        return run_flags(items).regs[2] == 1

    def test_signed_vs_unsigned(self):
        big_unsigned = 0xFFFFFFFF     # -1 signed
        assert self.condition_taken(Cond.LT, big_unsigned, 0)   # -1 < 0
        assert not self.condition_taken(Cond.LO, big_unsigned, 0)
        assert self.condition_taken(Cond.HI, big_unsigned, 0)
        assert not self.condition_taken(Cond.GT, big_unsigned, 0)

    def test_all_conditions_consistent(self):
        pairs = [(5, 3), (3, 5), (4, 4), (0xFFFFFFF0, 2)]
        for a, b in pairs:
            sa = a - (1 << 32) if a & 0x80000000 else a
            sb = b - (1 << 32) if b & 0x80000000 else b
            expect = {
                Cond.EQ: a == b, Cond.NE: a != b,
                Cond.LT: sa < sb, Cond.GE: sa >= sb,
                Cond.GT: sa > sb, Cond.LE: sa <= sb,
                Cond.LO: a < b, Cond.HS: a >= b,
                Cond.HI: a > b, Cond.LS: a <= b,
            }
            for cond, expected in expect.items():
                assert self.condition_taken(cond, a, b) == expected, \
                    (cond, a, b)


# -- randomised ALU cross-check ------------------------------------------------

_ALU_MODEL = {
    Op.AND: lambda a, b: a & b,
    Op.EOR: lambda a, b: a ^ b,
    Op.ORR: lambda a, b: a | b,
    Op.BIC: lambda a, b: a & ~b & _M32,
    Op.MUL: lambda a, b: (a * b) & _M32,
}


@settings(max_examples=80, deadline=None)
@given(
    op=st.sampled_from(sorted(_ALU_MODEL, key=lambda o: o.value)),
    a=st.integers(0, _M32),
    b=st.integers(0, _M32),
)
def test_alu_results_match_model(op, a, b):
    sim = run_flags(load_reg(0, a) + load_reg(1, b) + [ins.alu(op, 0, 1)])
    expected = _ALU_MODEL[op](a, b)
    assert sim.regs[0] == expected
    assert sim.n == (1 if expected & 0x80000000 else 0)
    assert sim.z == (1 if expected == 0 else 0)


@settings(max_examples=80, deadline=None)
@given(a=st.integers(0, _M32), amount=st.integers(0, 31))
def test_shift_results_match_model(a, amount):
    sim = run_flags(load_reg(0, a) + [ins.movi(1, amount),
                                      ins.alu(Op.LSL, 0, 1)])
    assert sim.regs[0] == (a << amount) & _M32
    sim = run_flags(load_reg(0, a) + [ins.movi(1, amount),
                                      ins.alu(Op.LSR, 0, 1)])
    assert sim.regs[0] == a >> amount
    sim = run_flags(load_reg(0, a) + [ins.movi(1, amount),
                                      ins.alu(Op.ASR, 0, 1)])
    signed = a - (1 << 32) if a & 0x80000000 else a
    assert sim.regs[0] == (signed >> amount) & _M32


@settings(max_examples=60, deadline=None)
@given(a=st.integers(0, _M32), b=st.integers(0, _M32))
def test_add_sub_flags_match_model(a, b):
    sim = run_flags(load_reg(0, a) + load_reg(1, b) + [ins.add_r(2, 0, 1)])
    total = a + b
    assert sim.regs[2] == total & _M32
    assert sim.c == (1 if total > _M32 else 0)
    sa = a - (1 << 32) if a & 0x80000000 else a
    sb = b - (1 << 32) if b & 0x80000000 else b
    assert sim.v == (1 if not -2**31 <= sa + sb < 2**31 else 0)

    sim = run_flags(load_reg(0, a) + load_reg(1, b) + [ins.sub_r(2, 0, 1)])
    assert sim.regs[2] == (a - b) & _M32
    assert sim.c == (1 if a >= b else 0)
    assert sim.v == (1 if not -2**31 <= sa - sb < 2**31 else 0)
