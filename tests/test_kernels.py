"""Pins for the vectorised replay kernels and the trace RLE form.

Four layers:

* **backend differential** — every committed hierarchy shape replayed
  under the scalar and the numpy kernels must agree on the full result
  (the scalar walk is itself pinned against the execution engine by
  ``tests/test_trace_replay.py``, so agreement here closes the loop);
* **geometry-grid property** — one :func:`replay_grid` pass over a
  (size × associativity) grid must equal per-point replays on
  adversarial synthetic streams (hypothesis-driven, write-heavy
  included) and equal the engine on generated (``gen:<seed>``)
  programs;
* **kernel selection** — the ``set_kernel`` override, the
  ``REPRO_REPLAY_KERNEL`` environment knob, and the numpy-absent
  fallback (the scalar kernels must serve everything when
  ``kernels._np`` is None, which is what the numpy-less CI job runs);
* **run-length encoding** — compress/expand round trips (strided,
  constant and unencodable streams), the pickle fast path in both its
  ``"runs"`` and ``"flat"`` branches, and :meth:`Trace.compact`.
"""

import pickle
import random
from array import array

import pytest
from hypothesis import given, settings, strategies as st

from repro.benchmarks import get
from repro.link import link
from repro.memory import CacheConfig, SystemConfig
from repro.memory.regions import MAIN_BASE
from repro.minic import compile_source
from repro.sim import Simulator
from repro.sim import kernels
from repro.sim.replay import replay, replay_grid, replay_sweep
from repro.sim.trace import (READ_TAGS, WRITE_TAGS, Trace, record_trace)
from repro.sim import trace as trace_mod

SPM_SIZE = 512

SHAPES = {
    "uncached": lambda: SystemConfig.uncached(),
    "spm": lambda: SystemConfig.scratchpad(SPM_SIZE),
    "l1": lambda: SystemConfig.cached(CacheConfig(size=512)),
    "l1-2way": lambda: SystemConfig.cached(CacheConfig(size=512, assoc=2)),
    "l1-fifo": lambda: SystemConfig.cached(
        CacheConfig(size=512, assoc=2, replacement="fifo")),
    "l1-random": lambda: SystemConfig.cached(
        CacheConfig(size=512, assoc=4, replacement="random")),
    "icache": lambda: SystemConfig.cached(
        CacheConfig(size=512, unified=False)),
    "hybrid": lambda: SystemConfig.hybrid(SPM_SIZE, CacheConfig(size=256)),
    "l1+l2": lambda: SystemConfig.two_level(
        CacheConfig(size=256), CacheConfig(size=1024)),
    "split-i/d": lambda: SystemConfig.split_l1(
        CacheConfig(size=256, unified=False), CacheConfig(size=256)),
}

needs_numpy = pytest.mark.skipif(not kernels.have_numpy(),
                                 reason="numpy not installed")

_IMAGES = {}
_TRACES = {}


def _image(spm: bool):
    if spm not in _IMAGES:
        program = compile_source(get("crc").source()).program
        if not spm:
            _IMAGES[spm] = link(program)
        else:
            chosen, used = [], 0
            for name, _kind, size in sorted(program.memory_objects(),
                                            key=lambda o: (o[2], o[0])):
                aligned = (size + 3) & ~3
                if used + aligned <= SPM_SIZE:
                    chosen.append(name)
                    used += aligned
            _IMAGES[spm] = link(program, spm_size=SPM_SIZE,
                                spm_objects=chosen)
    return _IMAGES[spm]


def _trace(spm: bool):
    if spm not in _TRACES:
        _TRACES[spm] = record_trace(_image(spm), SPM_SIZE if spm else 0)
    return _TRACES[spm]


def _stats_tuple(stats):
    if stats is None:
        return None
    return (stats.fetch_hits, stats.fetch_misses, stats.read_hits,
            stats.read_misses, stats.write_hits, stats.write_misses)


def _assert_same(got, want, context):
    assert got.cycles == want.cycles, context
    assert got.instructions == want.instructions, context
    assert _stats_tuple(got.cache_stats) == \
        _stats_tuple(want.cache_stats), context
    assert set(got.level_stats) == set(want.level_stats), context
    for level in want.level_stats:
        assert _stats_tuple(got.level_stats[level]) == \
            _stats_tuple(want.level_stats[level]), (context, level)


@pytest.fixture(autouse=True)
def _reset_kernel():
    yield
    kernels.set_kernel(None)


# -- backend differential over every committed shape -------------------------

@needs_numpy
@pytest.mark.parametrize("shape", SHAPES)
def test_numpy_matches_scalar_every_shape(shape):
    spm = shape in ("spm", "hybrid")
    trace = _trace(spm)
    config = SHAPES[shape]()
    kernels.set_kernel("scalar")
    want = replay(trace, config)
    kernels.set_kernel("numpy")
    got = replay(trace, config)
    _assert_same(got, want, shape)


# -- geometry grid: one pass == per-point == engine --------------------------

def _synthetic_trace(rng, accesses=2500, blocks=80, write_frac=0.15):
    """A conflict-heavy main-memory stream with a tunable write share."""
    line = 16
    ops = array("Q")
    op_counts = [0] * 8
    for _ in range(accesses):
        addr = MAIN_BASE + rng.randrange(blocks) * line + \
            rng.randrange(line // 4) * 4
        roll = rng.random()
        if roll < 0.55:
            tag = 0
        elif roll < 1.0 - write_frac:
            tag = READ_TAGS[rng.choice((1, 2, 4))]
        else:
            tag = WRITE_TAGS[rng.choice((1, 2, 4))]
        if tag in (1, 4):
            addr += rng.randrange(4)
        elif tag in (2, 5):
            addr += rng.choice((0, 2))
        ops.append((addr << 3) | tag)
        op_counts[tag] += 1
    return Trace(ops=ops, op_counts=tuple(op_counts),
                 spm_counts=(0,) * 8, base_cycles=rng.randrange(1000),
                 instructions=accesses, exit_code=0, console=(),
                 spm_size=0)


def _grid_configs(unified, sizes=(128, 512), assocs=(1, 2, 4, 8)):
    return [SystemConfig.cached(CacheConfig(size=size, assoc=assoc,
                                            unified=unified))
            for size in sizes for assoc in assocs if size >= 16 * assoc]


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1 << 20),
       write_frac=st.sampled_from((0.15, 0.45)))
def test_grid_property_matches_per_point(seed, write_frac):
    trace = _synthetic_trace(random.Random(seed), write_frac=write_frac)
    backends = ("scalar", "numpy") if kernels.have_numpy() else ("scalar",)
    results = {}
    for unified in (True, False):
        configs = _grid_configs(unified)
        for backend in backends:
            kernels.set_kernel(backend)
            for pos, (config, priced) in enumerate(
                    zip(configs, replay_grid(trace, configs))):
                _assert_same(priced, replay(trace, config),
                             (seed, backend, config.name))
                results.setdefault((unified, pos), []).append(priced)
    kernels.set_kernel(None)
    for name, priced in results.items():
        for other in priced[1:]:
            _assert_same(other, priced[0], ("backends", seed, name))


@pytest.mark.parametrize("seed", (101, 4242))
def test_grid_matches_engine_on_generated_programs(seed):
    from repro.gen.progen import generate
    generated = generate(seed, "small")
    image = link(compile_source(generated.source).program)
    trace = record_trace(image, 0)
    for unified in (True, False):
        configs = _grid_configs(unified, sizes=(256, 1024))
        for config, priced in zip(configs, replay_grid(trace, configs)):
            executed = Simulator(image, config).run()
            _assert_same(priced, executed, (seed, config.name))
            assert priced.exit_code == executed.exit_code
            assert priced.console == executed.console


@needs_numpy
def test_sweep_counts_non_chain_and_shuffled_orders():
    trace = _synthetic_trace(random.Random(7))
    values = kernels.ops_view(trace.ops)
    for unified in (True, False):
        kind = "unified" if unified else "fetch"
        for nsets_list in ((4, 6, 8, 12),      # no divisibility chain
                           (32, 4, 8, 8, 64)):  # shuffled + duplicates
            expect = [kernels.prep_counts(
                kernels.stream_prep(values, 16, kind), nsets)[0]
                for nsets in nsets_list]
            got = kernels.dm_sweep_counts(values, 16, unified, nsets_list)
            assert got == expect, (unified, nsets_list)


# -- kernel selection ---------------------------------------------------------

def test_set_kernel_validation():
    with pytest.raises(ValueError):
        kernels.set_kernel("fortran")
    kernels.set_kernel("scalar")
    assert kernels.active_kernel() == "scalar"
    kernels.set_kernel("auto")
    assert kernels.active_kernel() in ("scalar", "numpy")


def test_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_REPLAY_KERNEL", "scalar")
    assert kernels.active_kernel() == "scalar"
    monkeypatch.setenv("REPRO_REPLAY_KERNEL", "cobol")
    with pytest.raises(RuntimeError):
        kernels.active_kernel()
    # An installed override beats the environment.
    kernels.set_kernel("scalar")
    monkeypatch.setenv("REPRO_REPLAY_KERNEL", "numpy")
    assert kernels.active_kernel() == "scalar"


def test_numpy_requested_but_absent(monkeypatch):
    monkeypatch.setattr(kernels, "_np", None)
    assert not kernels.have_numpy()
    with pytest.raises(RuntimeError):
        kernels.set_kernel("numpy")
    monkeypatch.setenv("REPRO_REPLAY_KERNEL", "numpy")
    with pytest.raises(RuntimeError):
        kernels.active_kernel()


def test_replay_without_numpy_falls_back(monkeypatch):
    trace = _synthetic_trace(random.Random(3))
    config = SystemConfig.cached(CacheConfig(size=512))
    want = None
    if kernels.have_numpy():
        kernels.set_kernel("numpy")
        want = replay(trace, config)
        kernels.set_kernel(None)
    monkeypatch.setattr(kernels, "_np", None)
    assert kernels.active_kernel() == "scalar"
    got = replay(trace, config)
    for c, p in zip(_grid_configs(True, sizes=(256,)),
                    replay_grid(trace, _grid_configs(True, sizes=(256,)))):
        _assert_same(p, replay(trace, c), ("no-numpy grid", c.name))
    if want is not None:
        _assert_same(got, want, "no-numpy replay")


# -- run-length encoding ------------------------------------------------------

def _raw_trace(ops):
    counts = [0] * 8
    for value in ops:
        counts[value & 7] += 1
    return Trace(ops=array("Q", ops), op_counts=tuple(counts),
                 spm_counts=(0,) * 8, base_cycles=0, instructions=1,
                 exit_code=0, console=(), spm_size=0)


def test_rle_round_trip_strided_and_constant():
    # A strided fetch run (addr += 2 -> packed += 16), a constant run
    # (repeated reads of one word) and a lone op.
    ops = [((0x8000 + 2 * i) << 3) for i in range(10)]
    ops += [((0x9000 << 3) | 2)] * 5
    ops += [((0x7000 << 3) | 5)]
    trace = _raw_trace(ops)
    runs = trace.runs()
    assert runs is not None
    assert len(runs[2]) < len(ops)  # actually compressed
    assert list(trace_mod._expand_runs(*runs)) == ops
    flat = [value
            for first, count, stride in trace.iter_runs()
            for value in (range(first, first + 16 * count, 16) if stride
                          else [first] * count)]
    assert flat == ops


def test_rle_scalar_expand_matches_numpy(monkeypatch):
    ops = [((0x8000 + 2 * i) << 3) for i in range(50)] + \
        [((0x9000 << 3) | 2)] * 7 + [((0x6000 << 3) | 1)]
    trace = _raw_trace(ops)
    runs = trace.runs()
    expanded = list(trace_mod._expand_runs(*runs))
    monkeypatch.setattr(kernels, "_np", None)
    assert list(trace_mod._expand_runs(*runs)) == expanded == ops


def test_rle_refuses_foreign_overflow():
    # A backwards delta beyond int32 keeps the trace flat (the on-disk
    # and pickle forms fall back rather than mis-encode).
    ops = [((1 << 60) << 3), (0x1000 << 3), ((1 << 60) << 3) | 2]
    trace = _raw_trace(ops)
    assert trace.runs() is None
    assert [count for _f, count, _s in trace.iter_runs()] == [1, 1, 1]
    assert trace.compact() is trace  # keeps its ops
    assert list(trace.ops) == ops


def test_pickle_runs_and_flat_branches():
    compressible = _raw_trace(
        [((0x8000 + 2 * i) << 3) for i in range(20)])
    foreign = _raw_trace([((1 << 60) << 3), (0x1000 << 3)])
    for trace in (compressible, foreign):
        clone = pickle.loads(pickle.dumps(trace))
        assert list(clone.ops) == list(trace.ops)
        assert clone.op_counts == trace.op_counts
        assert clone.base_cycles == trace.base_cycles
        assert clone.spm_size == trace.spm_size
    # The compressible pickle must be the RLE form: smaller than flat.
    assert len(pickle.dumps(compressible)) < \
        len(pickle.dumps(foreign)) + 18 * 8


def test_compact_drops_flat_ops_and_reexpands():
    ops = [((0x8000 + 2 * i) << 3) for i in range(32)]
    trace = _raw_trace(ops)
    assert trace.compact() is trace
    assert trace._ops is None
    assert list(trace.ops) == ops  # re-expanded on demand
    clone = pickle.loads(pickle.dumps(trace))
    assert list(clone.ops) == ops


def test_recorded_trace_rle_round_trips():
    trace = _trace(False)
    raw = len(trace.ops) * 8
    payload = pickle.dumps(trace)
    assert len(payload) < raw  # the RLE satellite: strictly smaller
    clone = pickle.loads(payload)
    assert array("Q", clone.ops) == array("Q", trace.ops)
    config = SystemConfig.cached(CacheConfig(size=512))
    _assert_same(replay(clone, config), replay(trace, config), "rle clone")
