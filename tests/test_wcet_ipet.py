"""IPET on hand-built CFGs: flow conservation, bounds, edge costs."""

import pytest

from repro.wcet.cfg import BasicBlock, FunctionCFG
from repro.wcet.ipet import IPETError, solve_function_ipet
from repro.wcet.loops import Loop, find_natural_loops


def make_cfg(edges, entry, exits, name="f"):
    """Build a FunctionCFG skeleton from an edge list (no instructions)."""
    blocks = {}
    nodes = {entry, *exits}
    for src, dst in edges:
        nodes.add(src)
        nodes.add(dst)
    for node in nodes:
        blocks[node] = BasicBlock(start=node)
    for src, dst in edges:
        blocks[src].succs.append(dst)
    for node in exits:
        blocks[node].is_exit = True
    return FunctionCFG(name=name, entry=entry, blocks=blocks, calls=set())


class TestStraightAndDiamond:
    def test_single_block(self):
        cfg = make_cfg([], entry=0, exits={0})
        result = solve_function_ipet(cfg, {0: 42}, {}, {})
        assert result.wcet == 42
        assert result.block_counts[0] == 1

    def test_chain(self):
        cfg = make_cfg([(0, 2), (2, 4)], entry=0, exits={4})
        result = solve_function_ipet(cfg, {0: 10, 2: 20, 4: 30}, {}, {})
        assert result.wcet == 60

    def test_diamond_takes_max_branch(self):
        # 0 -> {2 | 4} -> 6
        cfg = make_cfg([(0, 2), (0, 4), (2, 6), (4, 6)],
                       entry=0, exits={6})
        result = solve_function_ipet(
            cfg, {0: 1, 2: 100, 4: 7, 6: 1}, {}, {})
        assert result.wcet == 1 + 100 + 1
        assert result.block_counts[2] == 1
        assert result.block_counts[4] == 0

    def test_edge_extras_charged_on_taken_edge(self):
        cfg = make_cfg([(0, 2), (0, 4), (2, 6), (4, 6)],
                       entry=0, exits={6})
        # Block 4 is cheaper per se, but its incoming edge carries a
        # refill penalty — the maximisation must include it.
        result = solve_function_ipet(
            cfg, {0: 1, 2: 10, 4: 8, 6: 1},
            {(0, 4): 50}, {})
        assert result.wcet == 1 + 8 + 50 + 1
        assert result.block_counts[4] == 1

    def test_multiple_exits(self):
        cfg = make_cfg([(0, 2), (0, 4)], entry=0, exits={2, 4})
        result = solve_function_ipet(cfg, {0: 1, 2: 5, 4: 9}, {}, {})
        assert result.wcet == 10


class TestLoops:
    def loop_cfg(self):
        # 0 -> 2 (header) -> 4 (body) -> 2 ; 2 -> 6 (exit)
        return make_cfg([(0, 2), (2, 4), (4, 2), (2, 6)],
                        entry=0, exits={6})

    def test_bounded_loop(self):
        cfg = self.loop_cfg()
        loops = find_natural_loops(cfg)
        assert set(loops) == {2}
        loops[2].bound = 10
        result = solve_function_ipet(
            cfg, {0: 1, 2: 2, 4: 5, 6: 1}, {}, loops)
        # header 11 times, body 10 times.
        assert result.wcet == 1 + 11 * 2 + 10 * 5 + 1

    def test_zero_bound_loop(self):
        cfg = self.loop_cfg()
        loops = find_natural_loops(cfg)
        loops[2].bound = 0
        result = solve_function_ipet(
            cfg, {0: 1, 2: 2, 4: 1000, 6: 1}, {}, loops)
        assert result.wcet == 1 + 2 + 1

    def test_total_bound_binds_tighter(self):
        cfg = self.loop_cfg()
        loops = find_natural_loops(cfg)
        loops[2].bound = 10
        loops[2].bound_total = 4
        result = solve_function_ipet(
            cfg, {0: 0, 2: 0, 4: 7, 6: 0}, {}, loops)
        assert result.wcet == 4 * 7

    def test_total_bound_alone(self):
        cfg = self.loop_cfg()
        loops = find_natural_loops(cfg)
        loops[2].bound = None
        loops[2].bound_total = 6
        result = solve_function_ipet(
            cfg, {0: 0, 2: 0, 4: 5, 6: 0}, {}, loops)
        assert result.wcet == 30

    def test_missing_bound_raises(self):
        cfg = self.loop_cfg()
        loops = find_natural_loops(cfg)
        with pytest.raises(IPETError):
            solve_function_ipet(cfg, {}, {}, loops)

    def test_loop_at_entry(self):
        # entry is itself the loop header: bound applies to the virtual
        # entry edge.
        cfg = make_cfg([(0, 2), (2, 0), (0, 4)], entry=0, exits={4})
        loops = find_natural_loops(cfg)
        loops[0].bound = 3
        result = solve_function_ipet(
            cfg, {0: 1, 2: 10, 4: 0}, {}, loops)
        assert result.wcet == 4 * 1 + 3 * 10

    def test_scope_penalty_charged_per_entry(self):
        cfg = self.loop_cfg()
        loops = find_natural_loops(cfg)
        loops[2].bound = 10
        result_plain = solve_function_ipet(
            cfg, {0: 0, 2: 0, 4: 1, 6: 0}, {}, loops)
        result_penalised = solve_function_ipet(
            cfg, {0: 0, 2: 0, 4: 1, 6: 0}, {}, loops,
            scope_penalties={2: 15})
        assert result_penalised.wcet == result_plain.wcet + 15

    def test_nested_loops(self):
        # outer header 2, inner header 4.
        cfg = make_cfg(
            [(0, 2), (2, 4), (4, 6), (6, 4), (4, 8), (8, 2), (2, 10)],
            entry=0, exits={10})
        loops = find_natural_loops(cfg)
        assert set(loops) == {2, 4}
        loops[2].bound = 3
        loops[4].bound = 5
        result = solve_function_ipet(
            cfg, {6: 1}, {}, loops)
        # inner body runs at most 3 * 5 times.
        assert result.wcet == 15

    def test_no_exit_raises(self):
        cfg = make_cfg([(0, 2), (2, 0)], entry=0, exits=set())
        loops = find_natural_loops(cfg)
        loops[0].bound = 5
        with pytest.raises(IPETError):
            solve_function_ipet(cfg, {0: 1, 2: 1}, {}, loops)
