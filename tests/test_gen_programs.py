"""The seeded workload generator: determinism, self-checks, harness.

Tier-1 smoke coverage for :mod:`repro.gen` — a handful of seeds through
the full soundness harness plus the generator's contract guarantees
(byte-identical output per seed, structural termination, embedded
self-check).  The thousands-of-seeds sweep lives in the ``fuzz`` tier
(``tests/test_fuzz_generated.py``).
"""

import subprocess
import sys

import pytest

from repro.gen import (
    SIZE_PROFILES,
    SoundnessFailure,
    check_program,
    check_seed,
    check_spm_placement,
    generate,
    write_corpus,
)
from repro.gen.progen import wrap32
from repro.link import link
from repro.memory import SystemConfig
from repro.minic import compile_source
from repro.sim import simulate


class TestDeterminism:
    def test_same_seed_same_bytes(self):
        for seed in (0, 7, 12345):
            first = generate(seed, "small")
            second = generate(seed, "small")
            assert first.source == second.source
            assert first.expected_checksum == second.expected_checksum
            assert first.expected_console == second.expected_console

    def test_byte_identical_across_processes(self):
        """The acceptance guarantee: repro-gen output is reproducible
        from the seed alone, including in a fresh interpreter (no
        hash-randomization or dict-order dependence)."""
        script = ("import sys; sys.path.insert(0, 'src'); "
                  "from repro.gen import generate; "
                  "sys.stdout.write(generate(42, 'small').source)")
        runs = [subprocess.run([sys.executable, "-c", script],
                               capture_output=True, text=True, check=True,
                               env={"PYTHONHASHSEED": str(n)}).stdout
                for n in (0, 1)]
        assert runs[0] == runs[1] == generate(42, "small").source

    def test_different_seeds_differ(self):
        sources = {generate(seed, "small").source for seed in range(8)}
        assert len(sources) == 8

    def test_sizes_scale(self):
        small = generate(5, "small").source
        large = generate(5, "large").source
        assert len(large) > len(small)

    def test_unknown_size_rejected(self):
        with pytest.raises(ValueError, match="unknown size"):
            generate(0, "jumbo")


class TestSelfCheck:
    @pytest.mark.parametrize("seed", range(6))
    def test_small_seeds_self_check(self, seed):
        program = generate(seed, "small")
        image = link(compile_source(program.source).program)
        result = simulate(image, SystemConfig.uncached())
        assert result.exit_code == program.expected_exit == 42
        assert tuple(result.console) == program.expected_console
        assert result.console[-2:] == ["O", "K"]

    @pytest.mark.parametrize("size", sorted(SIZE_PROFILES))
    def test_each_size_compiles_and_passes(self, size):
        program = generate(99, size)
        image = link(compile_source(program.source).program)
        assert simulate(image, SystemConfig.uncached()).exit_code == 42

    def test_checksum_is_nonnegative_int(self):
        program = generate(3, "small")
        assert 0 <= program.expected_checksum <= 0x7FFFFFFF
        assert str(program.expected_checksum) in program.source


class TestHarness:
    @pytest.mark.parametrize("seed", (0, 17))
    def test_full_tiers_on_default_shapes(self, seed):
        summary = check_seed(seed, "small", misses=True)
        assert summary["exit"] == 42
        assert len(summary["cycles"]) >= 4   # >= 4 hierarchy shapes

    def test_spm_placement(self):
        check_spm_placement(generate(8, "small"))

    def test_domain_differential_tier(self):
        check_seed(2, "small", wcet=False, domains=True)

    def test_failure_message_names_seed(self):
        import dataclasses
        broken = dataclasses.replace(generate(4, "small"),
                                     expected_exit=7)
        with pytest.raises(SoundnessFailure, match="repro-gen --seed 4"):
            check_program(broken)


class TestCorpusAndCli:
    def test_write_corpus(self, tmp_path):
        paths = write_corpus(tmp_path, range(3), "small")
        assert [p.rsplit("/", 1)[-1] for p in paths] == \
            [f"gen_small_{seed:06d}.mc" for seed in range(3)]
        text = (tmp_path / "gen_small_000001.mc").read_text()
        assert text == generate(1, "small").source

    def test_cli_prints_source(self, capsys):
        from repro.gen.cli import main
        assert main(["--seed", "6"]) == 0
        out = capsys.readouterr().out
        assert out == generate(6, "small").source

    def test_cli_check_passes(self, capsys):
        from repro.gen.cli import main
        assert main(["--seed", "9", "--check", "--quiet"]) == 0
        assert "1/1 seeds passed" in capsys.readouterr().out

    def test_cli_bad_seed_range(self):
        from repro.gen.cli import main
        with pytest.raises(SystemExit):
            main(["--seeds", "5:5"])

    def test_repro_cc_gen_delegates(self, capsys):
        from repro.cli import main
        assert main(["gen", "--seed", "6"]) == 0
        assert capsys.readouterr().out == generate(6, "small").source


def test_wrap32_is_twos_complement():
    assert wrap32(0x80000000) == -0x80000000
    assert wrap32(0x7FFFFFFF) == 0x7FFFFFFF
    assert wrap32(-1 << 40) == 0
    assert wrap32(0xFFFFFFFF) == -1
