"""The repro-experiments runner CLI."""

import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments.runner import main


class TestRunnerCli:
    def test_experiment_registry_complete(self):
        # One regeneration target per paper artefact + ablations.
        assert set(EXPERIMENTS) == {
            "table1", "table2", "fig2", "fig3", "fig4", "fig5", "fig6",
            "worstcase", "ablation_cacheconfig", "ablation_multilevel",
            "ablation_persistence", "ablation_wcet_alloc",
            "geometry_grid",
        }

    def test_single_experiment(self, capsys):
        assert main(["table1", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "===== table1" in out
        assert "Scratchpad" in out

    def test_multiple_experiments(self, capsys):
        assert main(["table1", "table2", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "===== table1" in out and "===== table2" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["not_an_experiment"])

    def test_jobs_flag_accepted(self, capsys):
        from repro.experiments import common
        try:
            assert main(["table1", "--fast", "--jobs", "2"]) == 0
        finally:
            common.set_jobs(1)
        assert "===== table1" in capsys.readouterr().out


class TestParallelSweepLayer:
    """evaluate_points must merge worker results deterministically."""

    def _rows(self, points):
        return [p.row() for p in points]

    def test_parallel_matches_serial(self):
        from repro.experiments import common
        from repro.memory.cache import CacheConfig
        tasks = [
            common.uncached_task("crc"),
            common.cache_task("crc", CacheConfig(size=256)),
            common.cache_task("crc", CacheConfig(size=512)),
            common.spm_task("crc", 128),
            common.hybrid_task("crc", 128, CacheConfig(size=256)),
            common.multilevel_task("crc", CacheConfig(size=256),
                                   CacheConfig(size=1024)),
            common.split_task("crc", CacheConfig(size=256, unified=False),
                              CacheConfig(size=256)),
        ]
        serial = self._rows(common.evaluate_points(tasks))
        common.set_jobs(2)
        try:
            parallel = self._rows(common.evaluate_points(tasks))
        finally:
            common.set_jobs(1)
        assert parallel == serial

    def test_unknown_task_kind_rejected(self):
        from repro.experiments.common import _evaluate_task
        with pytest.raises(ValueError):
            _evaluate_task(("crc", "warp-drive", ()))


class TestConsistency:
    """Sim and analyser must agree exactly on branch-free code.

    On straight-line programs there is no path or cache uncertainty in an
    uncached system, so any discrepancy is a timing-model divergence —
    the one thing the whole methodology depends on not happening.
    """

    @pytest.mark.parametrize("body", [
        "t = 1;",
        "t = a * b;",
        "t = a / (b + 1);",                      # runtime call
        "t = buf[3]; buf[4] = t;",
        "t = (a << 3) ^ (b >> 2); t = t % 7;",
        "t = helper(a) + helper(b);",
    ])
    def test_straightline_exact_equality(self, body):
        from repro.link import link
        from repro.memory import SystemConfig
        from repro.minic import compile_source
        from repro.sim import simulate
        from repro.wcet import analyze_wcet
        source = f"""
        int buf[8];
        int helper(int x) {{ return x + buf[1]; }}
        int main(void) {{
            int a = 13;
            int b = 5;
            int t;
            {body}
            return t & 255;
        }}
        """
        image = link(compile_source(source).program)
        config = SystemConfig.uncached()
        sim = simulate(image, config)
        wcet = analyze_wcet(image, config)
        # Division introduces a data-dependent early-out in __divu?  No:
        # the shift-subtract loop always runs 32 iterations, and the
        # quotient-bit branch is the only conditional — IPET assumes the
        # longer side, simulation may take the shorter one.
        assert wcet.wcet >= sim.cycles
        if "/" not in body and "%" not in body:
            assert wcet.wcet == sim.cycles
