"""(I)LP solver: simplex correctness vs scipy, branch & bound vs brute force."""

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.optimize import linprog

from repro.ilp import Model, Status, solve_lp


class TestModelBuilding:
    def test_var_validation(self):
        model = Model()
        with pytest.raises(ValueError):
            model.add_var("x", lo=5, hi=1)
        with pytest.raises(ValueError):
            model.add_var("x", lo=-math.inf)

    def test_coeff_keys_must_be_vars(self):
        model = Model()
        model.add_var("x")
        with pytest.raises(TypeError):
            model.add_le({"x": 1}, 1)

    def test_stats(self):
        model = Model("m")
        model.add_var("x", integer=True)
        model.add_le({}, 1)
        assert "1 vars (1 integer)" in model.stats()


class TestSimplexBasics:
    def test_simple_max(self):
        # max x + y st x <= 2, y <= 3
        model = Model(maximize=True)
        x = model.add_var("x", hi=2)
        y = model.add_var("y", hi=3)
        model.set_objective({x: 1, y: 1})
        solution = model.solve()
        assert solution.is_optimal
        assert solution.objective == pytest.approx(5)

    def test_equality_constraints(self):
        # min x + y st x + y == 4, x - y == 2  -> x=3, y=1
        model = Model()
        x = model.add_var("x")
        y = model.add_var("y")
        model.add_eq({x: 1, y: 1}, 4)
        model.add_eq({x: 1, y: -1}, 2)
        model.set_objective({x: 1, y: 1})
        solution = model.solve()
        assert solution[x] == pytest.approx(3)
        assert solution[y] == pytest.approx(1)

    def test_infeasible(self):
        model = Model()
        x = model.add_var("x", hi=1)
        model.add_ge({x: 1}, 2)
        assert model.solve().status == Status.INFEASIBLE

    def test_unbounded(self):
        model = Model(maximize=True)
        x = model.add_var("x")
        model.set_objective({x: 1})
        assert model.solve().status == Status.UNBOUNDED

    def test_negative_lower_bounds(self):
        # min x st x >= -5 -> -5
        model = Model()
        x = model.add_var("x", lo=-5)
        model.set_objective({x: 1})
        solution = model.solve()
        assert solution.objective == pytest.approx(-5)

    def test_ge_constraints(self):
        model = Model()
        x = model.add_var("x")
        model.add_ge({x: 2}, 10)
        model.set_objective({x: 1})
        assert model.solve().objective == pytest.approx(5)


class TestBranchAndBound:
    def brute_force(self, benefits, sizes, capacity):
        best = 0
        n = len(benefits)
        for mask in itertools.product((0, 1), repeat=n):
            size = sum(s for s, m in zip(sizes, mask) if m)
            if size <= capacity:
                best = max(best, sum(b for b, m in zip(benefits, mask)
                                     if m))
        return best

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.tuples(st.integers(1, 30), st.integers(1, 20)),
                 min_size=1, max_size=8),
        st.integers(1, 60),
    )
    def test_knapsack_matches_brute_force(self, items, capacity):
        model = Model("ks", maximize=True)
        xs = [model.add_var(f"x{i}", hi=1, integer=True)
              for i in range(len(items))]
        model.add_le({x: s for x, (_b, s) in zip(xs, items)}, capacity)
        model.set_objective({x: b for x, (b, _s) in zip(xs, items)})
        solution = model.solve()
        expected = self.brute_force([b for b, _ in items],
                                    [s for _, s in items], capacity)
        assert solution.is_optimal
        assert solution.objective == pytest.approx(expected)

    def test_integer_rounding(self):
        # LP relaxation is fractional; ILP must step down.
        model = Model(maximize=True)
        x = model.add_var("x", integer=True)
        model.add_le({x: 2}, 5)       # x <= 2.5
        model.set_objective({x: 1})
        solution = model.solve()
        assert solution[x] == 2

    def test_infeasible_integer(self):
        model = Model(maximize=True)
        x = model.add_var("x", integer=True, lo=0, hi=10)
        model.add_ge({x: 2}, 3)      # x >= 1.5
        model.add_le({x: 2}, 3.5     # x <= 1.75 -> no integer
                     )
        model.set_objective({x: 1})
        assert model.solve().status == Status.INFEASIBLE

    def test_lp_relaxation_flag(self):
        model = Model(maximize=True)
        x = model.add_var("x", integer=True)
        model.add_le({x: 2}, 5)
        model.set_objective({x: 1})
        relaxed = model.solve(integer=False)
        assert relaxed.objective == pytest.approx(2.5)


# -- randomised cross-check against scipy ------------------------------------

@settings(max_examples=150, deadline=None)
@given(st.data())
def test_lp_matches_scipy(data):
    n = data.draw(st.integers(1, 5), label="n")
    m = data.draw(st.integers(1, 4), label="m")
    rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
    c = rng.normal(size=n)
    a_ub = rng.normal(size=(m, n))
    b_ub = rng.normal(size=m) + 1.5
    bounds = [(0.0, 4.0)] * n
    status, _x, objective = solve_lp(c, a_ub, b_ub, bounds=bounds)
    reference = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=bounds,
                        method="highs")
    if status == Status.OPTIMAL:
        assert reference.status == 0
        assert objective == pytest.approx(reference.fun, abs=1e-6)
    else:
        assert reference.status != 0


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_lp_with_equalities_matches_scipy(data):
    n = data.draw(st.integers(2, 5))
    rng = np.random.default_rng(data.draw(st.integers(0, 2**32 - 1)))
    c = rng.normal(size=n)
    a_eq = rng.normal(size=(1, n))
    b_eq = rng.normal(size=1)
    bounds = [(-2.0, 3.0)] * n
    status, _x, objective = solve_lp(c, a_eq=a_eq, b_eq=b_eq,
                                     bounds=bounds)
    reference = linprog(c, A_eq=a_eq, b_eq=b_eq, bounds=bounds,
                        method="highs")
    if status == Status.OPTIMAL:
        assert reference.status == 0
        assert objective == pytest.approx(reference.fun, abs=1e-6)
    else:
        assert reference.status != 0
