"""Annotation files (Figure 2): generation, structure, round-trip."""

from repro.link import link
from repro.memory import SystemConfig
from repro.minic import compile_source
from repro.wcet import format_annotations, generate_annotations, \
    parse_annotations

SOURCE = """
const short table[8] = {1, 2, 3, 4, 5, 6, 7, 8};
int values[16];
char bytes[4];
int main(void) {
    int i; int t = 0;
    for (i = 0; i < 8; i++) { t += table[i]; }
    for (i = 0; i < 16; i++) { values[i] = t + i; }
    bytes[0] = (char)t;
    return t & 255;
}
"""


def build(spm_size=0, spm_objects=()):
    image = link(compile_source(SOURCE).program, spm_size=spm_size,
                 spm_objects=spm_objects)
    config = (SystemConfig.scratchpad(spm_size) if spm_size
              else SystemConfig.uncached())
    return image, generate_annotations(image, config)


class TestGeneration:
    def test_spm_area_first(self):
        _image, annos = build(spm_size=256, spm_objects={"table"})
        area = annos.areas[0]
        assert area.comment == "Scratchpad"
        assert area.cycles == 1
        assert area.lo == 0 and area.hi == 255

    def test_instruction_areas_are_16bit(self):
        _image, annos = build()
        code_areas = [a for a in annos.areas if "CODE-ONLY" in a.attributes]
        assert code_areas
        assert all(a.cycles == 2 for a in code_areas)

    def test_literal_pools_are_32bit_readonly(self):
        _image, annos = build()
        pools = [a for a in annos.areas if "Literal pool" in a.comment]
        assert pools
        for pool in pools:
            assert pool.cycles == 4
            assert "READ-ONLY" in pool.attributes
            assert "DATA-ONLY" in pool.attributes

    def test_data_area_widths_follow_elements(self):
        image, annos = build()
        by_comment = {a.comment: a for a in annos.areas}
        short_area = next(a for c, a in by_comment.items()
                          if c.startswith("table"))
        word_area = next(a for c, a in by_comment.items()
                         if c.startswith("values"))
        byte_area = next(a for c, a in by_comment.items()
                         if c.startswith("bytes"))
        assert short_area.cycles == 2   # 16-bit elements
        assert word_area.cycles == 4    # 32-bit elements
        assert byte_area.cycles == 2    # 8-bit: 2 cycles from Table 1

    def test_readonly_flag_tracks_const(self):
        _image, annos = build()
        table_area = next(a for a in annos.areas
                          if a.comment.startswith("table"))
        values_area = next(a for a in annos.areas
                           if a.comment.startswith("values"))
        assert "READ-ONLY" in table_area.attributes
        assert "READ-WRITE" in values_area.attributes

    def test_areas_cover_all_main_objects(self):
        # Every byte of every main-memory object lies in some area
        # (code objects may be split into instruction/pool areas).
        image, annos = build()
        intervals = sorted((a.lo, a.hi + 1) for a in annos.areas)

        def covered(lo, hi):
            cursor = lo
            for a_lo, a_hi in intervals:
                if a_lo <= cursor < a_hi:
                    cursor = a_hi
                    if cursor >= hi:
                        return True
            return cursor >= hi

        for obj in image.objects:
            assert covered(obj.base, obj.end), obj.name

    def test_spm_objects_not_duplicated(self):
        _image, annos = build(spm_size=256, spm_objects={"table"})
        assert not any(a.comment.startswith("table") for a in annos.areas)

    def test_loop_bounds_and_accesses_present(self):
        image, annos = build()
        assert set(annos.loop_bounds.values()) == {8, 16}
        assert annos.accesses
        for addr, ranges in annos.accesses.items():
            for lo, hi in ranges:
                assert lo < hi


class TestRoundTrip:
    def test_format_parse_roundtrip(self):
        _image, annos = build(spm_size=128, spm_objects={"bytes"})
        text = format_annotations(annos)
        parsed = parse_annotations(text)
        assert parsed.areas == annos.areas
        assert parsed.loop_bounds == annos.loop_bounds
        assert parsed.accesses == annos.accesses

    def test_figure2_style_output(self):
        _image, annos = build(spm_size=128, spm_objects={"bytes"})
        text = format_annotations(annos)
        assert "# Scratchpad" in text
        assert "MEMORY-AREA:" in text
        assert "LOOP-BOUND:" in text
        assert "READ-ONLY CODE-ONLY" in text

    def test_parse_rejects_garbage(self):
        import pytest
        with pytest.raises(ValueError):
            parse_annotations("NOT-A-KEY: 1 2 3")
