"""Whole-program WCET analysis: IPET values and the soundness guarantee."""

import pytest

from repro.isa import Label
from repro.isa import instruction as ins
from repro.link import FunctionCode, Program, link
from repro.memory import CacheConfig, SystemConfig
from repro.minic import compile_source
from repro.sim import simulate
from repro.wcet import WCETError, analyze_wcet
from repro.wcet.ipet import IPETError

from .helpers import run_main


def both(source, config, **wcet_kwargs):
    compiled = compile_source(source)
    image = link(compiled.program)
    sim = simulate(image, config)
    wcet = analyze_wcet(image, config, **wcet_kwargs)
    return sim, wcet


class TestExactCases:
    """Programs whose worst case equals the simulated path."""

    def test_straightline_exact(self):
        sim, wcet = both("int main(void) { return 2 + 3; }",
                         SystemConfig.uncached())
        assert wcet.wcet == sim.cycles

    def test_counted_loop_exact(self):
        source = """
        int main(void) {
            int i;
            int t = 0;
            for (i = 0; i < 37; i++) { t += i; }
            return t & 255;
        }
        """
        sim, wcet = both(source, SystemConfig.uncached())
        assert wcet.wcet == sim.cycles

    def test_nested_loops_exact(self):
        source = """
        int main(void) {
            int i; int j; int t = 0;
            for (i = 0; i < 6; i++) {
                for (j = 0; j < 7; j++) { t += 1; }
            }
            return t;
        }
        """
        sim, wcet = both(source, SystemConfig.uncached())
        assert wcet.wcet == sim.cycles

    def test_call_chain_exact(self):
        source = """
        int f(int x) { return x + 1; }
        int g(int x) { return f(x) + f(x); }
        int main(void) { return g(3); }
        """
        sim, wcet = both(source, SystemConfig.uncached())
        assert wcet.wcet == sim.cycles

    def test_branch_takes_max(self):
        # WCET must assume the expensive branch; sim takes the cheap one.
        source = """
        int pay(int n) {
            int i; int t = 0;
            for (i = 0; i < 50; i++) { t += i; }
            return t;
        }
        int main(void) {
            int x = 0;
            if (x) { return pay(1); }
            return 0;
        }
        """
        sim, wcet = both(source, SystemConfig.uncached())
        assert wcet.wcet > sim.cycles * 3

    def test_loop_total_bound_used(self):
        source = """
        int main(void) {
            int i; int j; int t = 0;
            for (i = 1; i < 9; i++) {
                j = 0;
                #pragma loopbound 8
                #pragma loopbound_total 12
                while (j < i) { j = j + 1; t = t + 1; }
            }
            return t;
        }
        """
        compiled = compile_source(source)
        image = link(compiled.program)
        wcet_with_total = analyze_wcet(image, SystemConfig.uncached())
        # Re-link without the total fact to measure its effect.
        for func in compiled.program.functions:
            func.loop_totals.clear()
        image2 = link(compiled.program)
        wcet_without = analyze_wcet(image2, SystemConfig.uncached())
        assert wcet_with_total.wcet < wcet_without.wcet


class TestSoundness:
    CONFIGS = [
        SystemConfig.uncached(),
        SystemConfig.cached(CacheConfig(size=128)),
        SystemConfig.cached(CacheConfig(size=1024)),
        SystemConfig.cached(CacheConfig(size=1024, assoc=2)),
        SystemConfig.cached(CacheConfig(size=512, unified=False)),
    ]

    @pytest.mark.parametrize("config", CONFIGS,
                             ids=lambda c: c.name + (
                                 "i" if c.cache and not c.cache.unified
                                 else ""))
    @pytest.mark.parametrize("key", ["adpcm", "multisort", "sort_wc"])
    def test_wcet_bounds_simulation(self, key, config):
        from repro.benchmarks import get
        image = link(compile_source(get(key).source()).program)
        sim = simulate(image, config)
        wcet = analyze_wcet(image, config)
        assert wcet.wcet >= sim.cycles

    @pytest.mark.parametrize("key", ["adpcm", "multisort"])
    def test_persistence_still_sound_and_tighter(self, key):
        from repro.benchmarks import get
        config = SystemConfig.cached(CacheConfig(size=1024))
        image = link(compile_source(get(key).source()).program)
        sim = simulate(image, config)
        plain = analyze_wcet(image, config, persistence=False)
        persist = analyze_wcet(image, config, persistence=True)
        assert sim.cycles <= persist.wcet <= plain.wcet

    def test_spm_allocation_preserves_soundness(self):
        from repro.benchmarks import get
        from repro.workflow import Workflow
        workflow = Workflow(get("adpcm").source())
        for size in (128, 1024):
            point = workflow.spm_point(size)
            assert point.wcet.wcet >= point.sim.cycles


class TestDiagnostics:
    def test_unknown_entry(self):
        image = link(compile_source("int main(void) {return 0;}").program)
        with pytest.raises(WCETError):
            analyze_wcet(image, SystemConfig.uncached(), entry="nope")

    def test_recursion_detected(self):
        source = """
        int f(int n) { if (n <= 0) { return 0; } return f(n - 1); }
        int main(void) { return f(3); }
        """
        image = link(compile_source(source).program)
        with pytest.raises(Exception) as excinfo:
            analyze_wcet(image, SystemConfig.uncached())
        assert "recursi" in str(excinfo.value).lower()

    def test_report_format(self):
        image = link(compile_source("int main(void) {return 0;}").program)
        result = analyze_wcet(image, SystemConfig.uncached())
        report = result.report()
        assert "WCET(_start)" in report
        assert "main" in report

    def test_block_counts_exposed(self):
        image = link(compile_source("int main(void) {return 0;}").program)
        result = analyze_wcet(image, SystemConfig.uncached())
        assert "main" in result.block_counts
        assert all(count >= 0
                   for counts in result.block_counts.values()
                   for count in counts.values())

    def test_infinite_loop_rejected(self):
        from repro.wcet import LoopError
        func = FunctionCode("_start", [
            Label("_start"), Label("spin"), ins.b("spin")])
        image = link(Program(functions=[func]))
        # Rejected as an unbounded loop (before IPET even runs).
        with pytest.raises((IPETError, LoopError)):
            analyze_wcet(image, SystemConfig.uncached())
