"""Mini-C lexer, parser and semantic analysis."""

import pytest

from repro.minic import LexError, ParseError, SemaError, analyze, parse, \
    tokenize
from repro.minic.ast_nodes import Binary, For, IntLit, While
from repro.minic.types import INT, SHORT, UNSIGNED, ArrayType, PointerType


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("int x = 0x1F + 'a';")
        kinds = [t.kind for t in tokens]
        assert kinds == ["kw", "ident", "op", "num", "op", "num", "op",
                         "eof"]
        assert tokens[3].value == 31
        assert tokens[5].value == ord("a")

    def test_comments(self):
        tokens = tokenize("// line\nint /* block\nmore */ x;")
        assert [t.text for t in tokens[:2]] == ["int", "x"]

    def test_unsigned_suffix(self):
        tokens = tokenize("1u 2U 3")
        assert tokens[0].kind == "unum"
        assert tokens[1].kind == "unum"
        assert tokens[2].kind == "num"

    def test_pragma(self):
        tokens = tokenize("#pragma loopbound 17\nwhile")
        assert tokens[0].kind == "pragma"
        assert tokens[0].text == "loopbound"
        assert tokens[0].value == 17

    def test_pragma_total(self):
        tokens = tokenize("#pragma loopbound_total 2016\n")
        assert tokens[0].text == "loopbound_total"
        assert tokens[0].value == 2016

    def test_escapes(self):
        tokens = tokenize(r"'\n' '\t' '\0' '\\'")
        assert [t.value for t in tokens[:4]] == [10, 9, 0, 92]

    def test_errors(self):
        with pytest.raises(LexError):
            tokenize("#pragma unknown 3")
        with pytest.raises(LexError):
            tokenize("int $x;")
        with pytest.raises(LexError):
            tokenize("/* unterminated")
        with pytest.raises(LexError):
            tokenize("'ab")

    def test_operator_maximal_munch(self):
        tokens = tokenize("a >>= b >> c > d")
        texts = [t.text for t in tokens if t.kind == "op"]
        assert texts == [">>=", ">>", ">"]


class TestParser:
    def test_global_declarations(self):
        unit = parse("int x; const short t[4] = {1, 2, -3, 4}; char c = 7;")
        assert len(unit.globals) == 3
        table = unit.globals[1]
        assert table.const
        assert isinstance(table.type, ArrayType)
        assert table.init == [1, 2, -3, 4]

    def test_function_params(self):
        unit = parse("int f(int a, short b[], char *c) { return a; }")
        params = unit.functions[0].params
        assert params[0].type is INT
        assert isinstance(params[1].type, PointerType)
        assert params[1].type.elem is SHORT
        assert isinstance(params[2].type, PointerType)

    def test_control_flow(self):
        source = """
        void f(void) {
            int i;
            for (i = 0; i < 4; i++) { continue; }
            while (i) { break; }
            do { i = i - 1; } while (i > 0);
            if (i) { i = 0; } else { i = 1; }
        }
        """
        unit = parse(source)
        body = unit.functions[0].body.body
        assert len(body) == 5  # decl + 4 statements

    def test_precedence(self):
        unit = parse("int f(void) { return 1 + 2 * 3 == 7; }")
        expr = unit.functions[0].body.body[0].value
        assert isinstance(expr, Binary) and expr.op == "=="

    def test_ternary_and_cast(self):
        unit = parse("int f(int a) { return a ? (short)a : 0; }")
        assert unit.functions[0] is not None

    def test_compound_assignment_desugars(self):
        unit = parse("void f(void) { int x; x += 3; }")
        stmt = unit.functions[0].body.body[1]
        assert isinstance(stmt.expr.value, Binary)
        assert stmt.expr.value.op == "+"

    def test_incr_decr_desugar(self):
        unit = parse("void f(void) { int x; x++; --x; }")
        inc = unit.functions[0].body.body[1].expr
        assert inc.value.op == "+"
        dec = unit.functions[0].body.body[2].expr
        assert dec.value.op == "-"

    def test_pragma_binds_to_loop(self):
        unit = parse("""
        void f(int n) {
            #pragma loopbound 9
            while (n) { n = n - 1; }
        }
        """)
        loop = unit.functions[0].body.body[0]
        assert isinstance(loop, While)
        assert loop.pragma_bound == 9

    def test_stacked_pragmas(self):
        unit = parse("""
        void f(int n) {
            int i;
            #pragma loopbound 9
            #pragma loopbound_total 30
            for (i = 0; i < n; i++) { }
        }
        """)
        loop = unit.functions[0].body.body[1]
        assert isinstance(loop, For)
        assert loop.pragma_bound == 9
        assert loop.pragma_total == 30

    def test_errors(self):
        with pytest.raises(ParseError):
            parse("int f( { }")
        with pytest.raises(ParseError):
            parse("void f(void) { #pragma loopbound 3\nint x; }")
        with pytest.raises(ParseError):
            parse("void f(void) { int a[4]; }")  # local array
        with pytest.raises(ParseError):
            parse("int x[0];")


class TestSema:
    def analyze_source(self, source):
        return analyze(parse(source))

    def test_duplicate_global(self):
        with pytest.raises(SemaError):
            self.analyze_source("int x; int x;")

    def test_undeclared_identifier(self):
        with pytest.raises(SemaError):
            self.analyze_source("int f(void) { return y; }")

    def test_const_assignment_rejected(self):
        with pytest.raises(SemaError):
            self.analyze_source(
                "const int k = 3; void f(void) { k = 4; }")
        with pytest.raises(SemaError):
            self.analyze_source(
                "const int t[2] = {1,2}; void f(void) { t[0] = 4; }")

    def test_pointer_restrictions(self):
        with pytest.raises(SemaError):
            self.analyze_source("void f(int *p) { p = p; }")

    def test_call_arity(self):
        with pytest.raises(SemaError):
            self.analyze_source(
                "int g(int a) { return a; } void f(void) { g(1, 2); }")

    def test_void_value_use(self):
        with pytest.raises(SemaError):
            self.analyze_source(
                "void g(void) { } int f(void) { return g(); }")

    def test_array_argument_type_match(self):
        with pytest.raises(SemaError):
            self.analyze_source(
                "short t[4]; int g(int a[]) { return a[0]; }"
                "int f(void) { return g(t); }")

    def test_points_to_resolution(self):
        analyzer = self.analyze_source("""
        int a[4]; int b[4];
        int sum(int p[]) { return p[0]; }
        int wrap(int q[]) { return sum(q); }
        int main(void) { return sum(a) + wrap(b); }
        """)
        assert analyzer.points_to[("sum", 0)] == {"a", "b"}
        assert analyzer.points_to[("wrap", 0)] == {"b"}

    def test_auto_bound_simple(self):
        analyzer = self.analyze_source("""
        void f(void) {
            int i;
            for (i = 0; i < 10; i++) { }
            for (i = 9; i >= 0; i--) { }
            for (i = 0; i <= 10; i += 2) { }
        }
        """)
        loops = analyzer.infos["f"].decl.body.body[1:]
        assert loops[0].bound == 10
        assert loops[1].bound == 10
        assert loops[2].bound == 6

    def test_auto_bound_rejects_modified_var(self):
        analyzer = self.analyze_source("""
        void f(void) {
            int i;
            for (i = 0; i < 10; i++) { i = 0; }
        }
        """)
        loop = analyzer.infos["f"].decl.body.body[1]
        assert loop.bound is None

    def test_auto_bound_rejects_wrong_direction(self):
        # Step moves away from the limit: not a counted loop the analysis
        # recognises (it conservatively gives no bound).
        analyzer = self.analyze_source("""
        void f(void) {
            int i;
            for (i = 0; i > 10; i++) { }
        }
        """)
        loop = analyzer.infos["f"].decl.body.body[1]
        assert loop.bound is None

    def test_division_marks_runtime(self):
        analyzer = self.analyze_source(
            "int f(int a, int b) { return a / b; }")
        assert (True, "/") in analyzer.uses_division
        assert "__divs" in analyzer.infos["f"].calls

    def test_unsigned_division_variant(self):
        analyzer = self.analyze_source(
            "unsigned f(unsigned a, unsigned b) { return a % b; }")
        assert (False, "%") in analyzer.uses_division

    def test_signedness_of_comparison(self):
        analyzer = self.analyze_source("""
        int f(unsigned a, int b) { return a < (unsigned)b; }
        int g(int a, int b) { return a < b; }
        """)
        ret_f = analyzer.infos["f"].decl.body.body[0].value
        ret_g = analyzer.infos["g"].decl.body.body[0].value
        assert ret_f.signed is False
        assert ret_g.signed is True

    def test_constant_folding(self):
        analyzer = self.analyze_source(
            "int f(void) { return 2 + 3 * 4 - (10 / 3) - (-7 % 3); }")
        ret = analyzer.infos["f"].decl.body.body[0].value
        assert isinstance(ret, IntLit)
        assert ret.value == 2 + 12 - 3 - (-1)

    def test_power_of_two_strength_reduction(self):
        analyzer = self.analyze_source("int f(int a) { return a * 8; }")
        ret = analyzer.infos["f"].decl.body.body[0].value
        assert ret.op == "<<"
        assert ret.right.value == 3

    def test_break_outside_loop(self):
        with pytest.raises(SemaError):
            self.analyze_source("void f(void) { break; }")

    def test_return_type_checks(self):
        with pytest.raises(SemaError):
            self.analyze_source("void f(void) { return 3; }")
        with pytest.raises(SemaError):
            self.analyze_source("int f(void) { return; }")
