"""Benchmark programs: oracle agreement and configuration independence.

Two properties per benchmark:

* the compiled binary computes exactly what the bit-exact Python reference
  says it should (end-to-end over the whole toolchain);
* results are identical across every memory configuration — the memory
  hierarchy may change *timing* but never *values* (this would have caught
  any coherence bug in the cache or SPM paths).
"""

import pytest

from repro.benchmarks import BENCHMARKS, get, table2_rows
from repro.link import link
from repro.memory import CacheConfig, SystemConfig
from repro.minic import compile_source
from repro.sim import simulate
from repro.workflow import Workflow

ALL_KEYS = sorted(BENCHMARKS)


@pytest.fixture(scope="module")
def compiled():
    return {key: compile_source(get(key).source()) for key in ALL_KEYS}


class TestOracles:
    @pytest.mark.parametrize("key", ALL_KEYS)
    def test_matches_python_reference(self, compiled, key):
        image = link(compiled[key].program)
        result = simulate(image, SystemConfig.uncached())
        expected_console, expected_exit = get(key).expected()
        assert result.console == expected_console
        assert result.exit_code == expected_exit


class TestConfigurationIndependence:
    CONFIGS = [
        SystemConfig.uncached(),
        SystemConfig.cached(CacheConfig(size=64)),
        SystemConfig.cached(CacheConfig(size=2048, assoc=2)),
        SystemConfig.cached(CacheConfig(size=512, unified=False)),
    ]

    @pytest.mark.parametrize("key", ALL_KEYS)
    def test_results_identical_across_configs(self, compiled, key):
        image = link(compiled[key].program)
        reference = simulate(image, SystemConfig.uncached())
        for config in self.CONFIGS[1:]:
            result = simulate(image, config)
            assert result.console == reference.console, config.name
            assert result.exit_code == reference.exit_code

    @pytest.mark.parametrize("key", ["adpcm", "multisort"])
    def test_spm_placement_does_not_change_results(self, compiled, key):
        workflow = Workflow(get(key).source())
        reference = workflow.uncached_point().sim
        for size in (128, 2048):
            point = workflow.spm_point(size)
            assert point.sim.console == reference.console
            assert point.sim.exit_code == reference.exit_code


class TestSuiteMetadata:
    def test_table2_contents(self):
        rows = dict(table2_rows())
        assert set(rows) == {"G.721", "ADPCM", "MultiSort"}
        assert "MediaBench" in rows["G.721"]

    def test_sources_load(self):
        for key in ALL_KEYS:
            assert len(get(key).source()) > 100

    @pytest.mark.parametrize("key", ALL_KEYS)
    def test_loop_bounds_all_present(self, compiled, key):
        """Every loop in every benchmark must carry a usable bound."""
        from repro.wcet import analyze_wcet
        image = link(compiled[key].program)
        # analyze_wcet raises LoopError if any bound is missing.
        result = analyze_wcet(image, SystemConfig.uncached())
        assert result.wcet > 0


class TestBenchmarkShape:
    def test_g721_is_the_biggest(self, compiled):
        sizes = {key: sum(f.size for f in compiled[key].program.functions)
                 for key in ALL_KEYS}
        assert sizes["g721"] == max(sizes.values())

    def test_multisort_checks_its_own_output(self, compiled):
        # check_sorted() failures exit with small codes 1..6; the golden
        # run must exit via the checksum path.
        image = link(compiled["multisort"].program)
        result = simulate(image, SystemConfig.uncached())
        assert result.exit_code not in range(1, 7)

    def test_division_runtime_only_where_used(self, compiled):
        multisort_funcs = {f.name for f in
                           compiled["multisort"].program.functions}
        adpcm_funcs = {f.name for f in compiled["adpcm"].program.functions}
        assert "__mods" in multisort_funcs   # uses % and /
        assert "__divu" not in adpcm_funcs   # shift-based, no division
