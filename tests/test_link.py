"""Linker: placement, symbol resolution, annotations, validation."""

import pytest

from repro.isa import Label, Op, decode
from repro.isa import instruction as ins
from repro.link import (
    AccessNote,
    DataObject,
    FunctionCode,
    LinkError,
    Program,
    link,
)
from repro.memory.regions import MAIN_BASE, SPM_BASE


def tiny_program():
    start = FunctionCode("_start", [
        Label("_start"), ins.bl("f"), ins.swi(0)])
    func = FunctionCode("f", [
        Label("f"), Label("f_loop"), ins.subi(0, 1),
        ins.b("f_done"),
        Label("f_done"), ins.bx(14)],
        loop_bounds={"f_loop": 5})
    data = DataObject("buf", size=32, element_width=4)
    table = DataObject("tbl", payload=b"\x01\x02\x03\x04", readonly=True,
                       element_width=2)
    return Program(functions=[start, func], globals=[data, table])


class TestPlacement:
    def test_default_all_main(self):
        image = link(tiny_program())
        for obj in image.objects:
            assert obj.region == "main"
            assert obj.base >= MAIN_BASE

    def test_spm_placement(self):
        image = link(tiny_program(), spm_size=128, spm_objects={"f", "buf"})
        assert image.object_named("f").region == "scratchpad"
        assert image.object_named("buf").region == "scratchpad"
        assert image.object_named("_start").region == "main"
        assert image.object_named("f").base < 128
        assert image.spm_bytes_used() > 0

    def test_objects_do_not_overlap(self):
        image = link(tiny_program(), spm_size=64, spm_objects={"buf"})
        spans = sorted((o.base, o.end) for o in image.objects)
        for (b1, e1), (b2, _e2) in zip(spans, spans[1:]):
            assert e1 <= b2

    def test_alignment(self):
        image = link(tiny_program())
        for obj in image.objects:
            assert obj.base % 4 == 0

    def test_spm_overflow_rejected(self):
        with pytest.raises(LinkError):
            link(tiny_program(), spm_size=16, spm_objects={"buf"})

    def test_unknown_object_rejected(self):
        with pytest.raises(LinkError):
            link(tiny_program(), spm_size=64, spm_objects={"nope"})

    def test_spm_objects_without_capacity_rejected(self):
        with pytest.raises(LinkError):
            link(tiny_program(), spm_size=0, spm_objects={"f"})


class TestSymbolsAndAnnotations:
    def test_entry_and_function_symbols(self):
        image = link(tiny_program())
        assert image.entry == image.symbols["_start"]
        assert image.symbols["f"] == image.object_named("f").base

    def test_loop_bounds_resolved_to_addresses(self):
        image = link(tiny_program())
        base = image.object_named("f").base
        assert image.loop_bounds == {base: 5}

    def test_loop_totals_resolved(self):
        func = FunctionCode("f", [Label("f"), Label("L"), ins.bx(14)],
                            loop_totals={"L": 99})
        start = FunctionCode("_start", [Label("_start"), ins.swi(0)])
        image = link(Program(functions=[start, func]))
        assert list(image.loop_totals.values()) == [99]

    def test_access_notes_keyed_by_address(self):
        load = ins.mem_i(Op.LDRWI, 0, 1, 0)
        load.note = AccessNote.exact("buf", 0, 4)
        func = FunctionCode("f", [Label("f"), load, ins.bx(14)])
        start = FunctionCode("_start", [Label("_start"), ins.swi(0)])
        program = Program(functions=[start, func],
                          globals=[DataObject("buf", size=16)])
        image = link(program)
        base = image.object_named("f").base
        assert base in image.access_notes
        assert image.access_notes[base].targets[0][0] == "buf"

    def test_bl_crosses_regions(self):
        image = link(tiny_program(), spm_size=128, spm_objects={"f"})
        # Decode the BL in _start and verify it targets f's SPM address.
        start = image.object_named("_start")
        hw1 = image.read_halfword(start.base)
        hw2 = image.read_halfword(start.base + 2)
        instr = decode(hw1, start.base, hw2)
        assert instr.op is Op.BL
        assert instr.target == image.symbols["f"] < 128

    def test_literal_pool_wordref_patched(self):
        from repro.isa.assembler import WordRef
        func = FunctionCode("f", [
            Label("f"), ins.ldr_pc(0, target=".Lf_P0"), ins.bx(14),
            Label(".Lf_P0"), WordRef("buf")])
        start = FunctionCode("_start", [Label("_start"), ins.swi(0)])
        program = Program(functions=[start, func],
                          globals=[DataObject("buf", size=8)])
        image = link(program, spm_size=32, spm_objects={"buf"})
        pool_addr = image.symbols[".Lf_P0"]
        assert image.read_word(pool_addr) == image.symbols["buf"]
        assert image.symbols["buf"] < 32  # in SPM

    def test_map_report(self):
        report = link(tiny_program()).map_report()
        assert "_start" in report and "buf" in report

    def test_missing_entry_rejected(self):
        program = Program(functions=[FunctionCode(
            "f", [Label("f"), ins.bx(14)])])
        with pytest.raises(LinkError):
            link(program)

    def test_duplicate_labels_rejected(self):
        f1 = FunctionCode("_start", [Label("_start"), Label("dup"),
                                     ins.swi(0)])
        f2 = FunctionCode("g", [Label("g"), Label("dup"), ins.bx(14)])
        with pytest.raises(LinkError):
            link(Program(functions=[f1, f2]))

    def test_data_initial_bytes(self):
        image = link(tiny_program())
        tbl = image.object_named("tbl")
        assert image.read_bytes(tbl.base, 4) == b"\x01\x02\x03\x04"
        buf = image.object_named("buf")
        assert image.read_bytes(buf.base, 32) == b"\0" * 32

    def test_image_object_at(self):
        image = link(tiny_program())
        buf = image.object_named("buf")
        assert image.object_at(buf.base + 10).name == "buf"
        assert image.object_at(0xDEAD0000) is None
