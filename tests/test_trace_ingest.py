"""External trace ingestion: round trips, foreign formats, rejection.

Three properties pin the ingestion path down:

* **round trip** — ``dump_trace`` of a natively recorded trace parses
  back to a bit-identical :class:`Trace` (same packed ops words, same
  metadata), and the parsed trace replays and *sweeps* to the same
  results as the original, so traces can move between machines as text;
* **foreign formats** — Pin ``pinatrace``-style and PredicMem-style CSV
  streams parse to exactly the packed representation the documented
  synthesis rule prescribes, and replaying the ingested trace is
  bit-identical to replaying an equivalent natively constructed one;
* **rejection** — malformed or truncated input raises
  :class:`TraceFormatError` naming the offending line, never a silent
  half-trace.
"""

import gzip
import io
import random
from array import array

import pytest

from repro.benchmarks import get
from repro.link import link
from repro.memory import CacheConfig, SystemConfig
from repro.minic import compile_source
from repro.sim import (
    Trace,
    TraceFormatError,
    dump_trace,
    load_trace,
    parse_trace,
    record_trace,
    simulate,
)
from repro.sim.ingest import save_trace
from repro.sim.replay import replay, replay_misses, replay_sweep
from repro.sim.trace import READ_TAGS, TAG_FETCH, WRITE_TAGS

SWEEP_SIZES = (64, 128, 256, 512)


def _native_trace(bench="crc"):
    image = link(compile_source(get(bench).source()).program)
    return record_trace(image, 0)


def _dump_lines(trace):
    buffer = io.StringIO()
    dump_trace(trace, buffer)
    return buffer.getvalue()


def _assert_traces_equal(parsed, original):
    assert parsed.ops == original.ops
    assert parsed.op_counts == original.op_counts
    assert parsed.spm_counts == original.spm_counts
    assert parsed.base_cycles == original.base_cycles
    assert parsed.instructions == original.instructions
    assert parsed.exit_code == original.exit_code
    assert parsed.console == original.console
    assert parsed.spm_size == original.spm_size


def _assert_same_result(a, b):
    assert a.cycles == b.cycles
    assert a.instructions == b.instructions
    assert a.exit_code == b.exit_code
    assert a.console == b.console


class TestRoundTrip:
    def test_bitwise_roundtrip(self):
        original = _native_trace()
        parsed = parse_trace(_dump_lines(original).splitlines())
        _assert_traces_equal(parsed, original)

    def test_dump_emits_version_3_runs(self):
        text = _dump_lines(_native_trace())
        lines = text.splitlines()
        assert lines[0] == "# repro-trace 3"
        assert any(" x" in line for line in lines
                   if not line.startswith("#"))

    def test_version_1_files_still_load(self):
        # Pre-RLE dumps carry one record per access; the parser keeps
        # accepting them unchanged.
        parsed = parse_trace(["# repro-trace 1",
                              "F 0x8000", "F 0x8002", "R4 0x9000"])
        assert list(parsed.ops) == [(0x8000 << 3),
                                    (0x8002 << 3),
                                    (0x9000 << 3) | READ_TAGS[4]]

    def test_version_3_run_records_expand(self):
        parsed = parse_trace(["# repro-trace 3",
                              "F 0x8000 x3 s2",     # 0x8000/2/4
                              "R4 0x9000 x2",       # repeated word read
                              "W2 0xa000"])
        expect = [(0x8000 << 3), (0x8002 << 3), (0x8004 << 3),
                  (0x9000 << 3) | READ_TAGS[4],
                  (0x9000 << 3) | READ_TAGS[4],
                  (0xa000 << 3) | WRITE_TAGS[2]]
        assert list(parsed.ops) == expect
        assert parsed.op_counts[TAG_FETCH] == 3

    def test_run_roundtrip_random_traces(self):
        rng = random.Random(0xBEEF)
        ops = array("Q")
        counts = [0] * 8
        addr = 0x8000
        for _ in range(500):
            if rng.random() < 0.7:
                addr += 2
                tag = TAG_FETCH
            else:
                addr = 0x9000 + rng.randrange(64) * 4
                tag = rng.choice((READ_TAGS[4], WRITE_TAGS[4]))
            ops.append((addr << 3) | tag)
            counts[tag] += 1
        original = Trace(ops=ops, op_counts=tuple(counts),
                         spm_counts=(0,) * 8, base_cycles=7,
                         instructions=counts[TAG_FETCH], exit_code=0,
                         console=(), spm_size=0)
        parsed = parse_trace(_dump_lines(original).splitlines())
        _assert_traces_equal(parsed, original)

    def test_roundtrip_preserves_console_and_spm_counts(self):
        source = get("crc").source()
        program = compile_source(source).program
        chosen = [name for name, _kind, size
                  in sorted(program.memory_objects(),
                            key=lambda o: (o[2], o[0]))][:3]
        image = link(program, spm_size=512, spm_objects=chosen)
        original = record_trace(image, 512)
        assert sum(original.spm_counts) > 0
        parsed = parse_trace(_dump_lines(original).splitlines())
        _assert_traces_equal(parsed, original)

    def test_ingested_replay_bit_identical(self):
        original = _native_trace()
        parsed = parse_trace(_dump_lines(original).splitlines())
        for config in (SystemConfig.uncached(),
                       SystemConfig.cached(CacheConfig(size=256)),
                       SystemConfig.cached(CacheConfig(size=512, assoc=2)),
                       SystemConfig.two_level(CacheConfig(size=128),
                                              CacheConfig(size=512))):
            _assert_same_result(replay(parsed, config),
                                replay(original, config))
            fetch, main = replay_misses(parsed, config)
            fetch0, main0 = replay_misses(original, config)
            assert fetch == fetch0 and main == main0

    def test_ingested_sweep_bit_identical(self):
        original = _native_trace()
        parsed = parse_trace(_dump_lines(original).splitlines())
        configs = [SystemConfig.cached(CacheConfig(size=size))
                   for size in SWEEP_SIZES]
        for swept, direct in zip(replay_sweep(parsed, configs),
                                 replay_sweep(original, configs)):
            _assert_same_result(swept, direct)

    def test_gzip_file_roundtrip(self, tmp_path):
        original = _native_trace()
        path = tmp_path / "crc.trace.gz"
        save_trace(original, path)
        with gzip.open(path, "rt") as handle:
            assert handle.readline().startswith("# repro-trace")
        _assert_traces_equal(load_trace(path), original)

    def test_plain_file_roundtrip(self, tmp_path):
        original = _native_trace()
        path = tmp_path / "crc.trace"
        save_trace(original, path)
        _assert_traces_equal(load_trace(path), original)


class TestForeignFormats:
    def _pin_lines(self, records):
        return [f"{ip:#x}: {kind} {addr:#x}" for ip, kind, addr in records]

    def _expected_packed(self, records, width=4):
        """The documented synthesis: one fetch per ip *change*."""
        ops = array("Q")
        last_ip = None
        for ip, kind, addr in records:
            if ip != last_ip:
                ops.append((ip << 3) | TAG_FETCH)
                last_ip = ip
            tags = READ_TAGS if kind == "R" else WRITE_TAGS
            ops.append((addr << 3) | tags[width])
        return ops

    def _random_records(self, seed, count=2000):
        rng = random.Random(seed)
        base = 0x40_0000
        records = []
        ip = base
        for _ in range(count):
            if rng.random() < 0.7:
                ip += 2
            kind = "R" if rng.random() < 0.6 else "W"
            addr = 0x80_0000 + rng.randrange(512) * 4
            records.append((ip, kind, addr))
        return records

    def test_pin_parse_matches_synthesis_rule(self):
        records = self._random_records(1)
        trace = parse_trace(self._pin_lines(records), fmt="pin")
        assert trace.ops == self._expected_packed(records)
        assert trace.base_cycles == 0
        assert trace.exit_code == 0
        assert trace.spm_size == 0
        assert trace.instructions == trace.op_counts[TAG_FETCH]

    @pytest.mark.parametrize("seed", range(3))
    def test_pin_replay_and_sweep_match_native_equivalent(self, seed):
        """An ingested stream prices identically to the same packed
        stream constructed natively — replay and single-pass sweep."""
        records = self._random_records(seed)
        ingested = parse_trace(self._pin_lines(records), fmt="pin")
        native = Trace(ops=self._expected_packed(records),
                       op_counts=ingested.op_counts,
                       spm_counts=(0,) * 8, base_cycles=0,
                       instructions=ingested.instructions, exit_code=0,
                       console=(), spm_size=0)
        configs = [SystemConfig.cached(CacheConfig(size=size))
                   for size in SWEEP_SIZES]
        for config in configs:
            _assert_same_result(replay(ingested, config),
                                replay(native, config))
        for swept, config in zip(replay_sweep(ingested, configs), configs):
            _assert_same_result(swept, replay(native, config))

    def test_pin_explicit_width_and_autodetect(self):
        trace = parse_trace(["0x10: R 0x100 2", "0x12: W 0x104 1"])
        assert [v & 7 for v in trace.ops] == \
            [TAG_FETCH, READ_TAGS[2], TAG_FETCH, WRITE_TAGS[1]]

    def test_predicmem_csv(self):
        trace = parse_trace(["4096,32768", "4096;32772", "4098,32768"])
        assert [v & 7 for v in trace.ops] == \
            [TAG_FETCH, READ_TAGS[4], READ_TAGS[4],
             TAG_FETCH, READ_TAGS[4]]
        assert trace.ops[0] >> 3 == 4096
        assert trace.instructions == 2

    def test_comments_and_blank_lines_ignored(self):
        trace = parse_trace(["# a comment", "", "0x10: R 0x100",
                             "// another", "0x12: W 0x104"], fmt="pin")
        assert len(trace.ops) == 4


class TestRejection:
    def test_empty_input(self):
        with pytest.raises(TraceFormatError, match="empty"):
            parse_trace([])

    def test_undetectable_first_line(self):
        with pytest.raises(TraceFormatError, match="auto-detect"):
            parse_trace(["what is this"])

    def test_unknown_format_name(self):
        with pytest.raises(TraceFormatError, match="unknown trace format"):
            parse_trace(["0x10: R 0x100"], fmt="elf")

    def test_pin_bad_kind_names_line(self):
        with pytest.raises(TraceFormatError, match="line 2"):
            parse_trace(["0x10: R 0x100", "0x12: X 0x104"], fmt="pin")

    def test_pin_bad_address_names_line(self):
        with pytest.raises(TraceFormatError, match="line 1"):
            parse_trace(["0x10: R zork"], fmt="pin")

    def test_pin_bad_width(self):
        with pytest.raises(TraceFormatError, match="size 3"):
            parse_trace(["0x10: R 0x100 3"], fmt="pin")

    def test_pin_truncated_record(self):
        with pytest.raises(TraceFormatError, match="line 1"):
            parse_trace(["0x10: R"], fmt="pin")

    def test_csv_truncated_record(self):
        with pytest.raises(TraceFormatError, match="line 2"):
            parse_trace(["4096,32768", "4098"], fmt="predicmem")

    def test_address_out_of_range(self):
        with pytest.raises(TraceFormatError, match="out of range"):
            parse_trace([f"{1 << 62}: R 0x100"], fmt="pin")

    def test_native_record_before_header(self):
        with pytest.raises(TraceFormatError, match="header"):
            parse_trace(["F 0x100"], fmt="repro")

    def test_native_unknown_kind(self):
        with pytest.raises(TraceFormatError, match="line 2"):
            parse_trace(["# repro-trace 1", "Q 0x100"])

    def test_native_bad_metadata(self):
        with pytest.raises(TraceFormatError, match="base_cycles"):
            parse_trace(["# repro-trace 1", "# base_cycles soon"])

    def test_native_bad_spm_counts_arity(self):
        with pytest.raises(TraceFormatError, match="8 fields"):
            parse_trace(["# repro-trace 1", "# spm_counts 1 2 3"])

    def test_native_version_mismatch(self):
        with pytest.raises(TraceFormatError, match="version"):
            parse_trace(["# repro-trace 99", "F 0x100"])

    def test_unreadable_file(self, tmp_path):
        with pytest.raises(TraceFormatError, match="cannot read"):
            load_trace(tmp_path / "missing.trace")

    def test_corrupt_gzip(self, tmp_path):
        path = tmp_path / "bad.trace.gz"
        path.write_bytes(b"definitely not gzip")
        with pytest.raises(TraceFormatError, match="cannot read"):
            load_trace(path)


def test_ingested_trace_rejects_mismatched_spm_config():
    trace = parse_trace(["0x10: R 0x100"], fmt="pin")
    with pytest.raises(ValueError, match="SPM"):
        replay(trace, SystemConfig.scratchpad(512))


def test_roundtrip_of_generated_program(tmp_path):
    """gen -> trace -> export -> ingest -> replay == simulate."""
    from repro.gen import generate
    program = generate(23, "small")
    image = link(compile_source(program.source).program)
    original = record_trace(image, 0)
    path = tmp_path / "gen.trace"
    save_trace(original, path)
    parsed = load_trace(path)
    _assert_traces_equal(parsed, original)
    config = SystemConfig.cached(CacheConfig(size=128))
    _assert_same_result(replay(parsed, config), simulate(image, config))
