"""Memory map, Table-1 timing and hierarchy cycle accounting."""

import pytest

from repro.memory import (
    MAIN_BASE,
    STACK_TOP,
    AccessTiming,
    CacheConfig,
    MemoryHierarchy,
    MemoryMap,
    Region,
    RegionKind,
    SystemConfig,
)


class TestRegions:
    def test_spm_map(self):
        memmap = MemoryMap.with_spm(1024)
        assert memmap.spm_region.size == 1024
        assert memmap.kind_at(0) == RegionKind.SPM
        assert memmap.kind_at(MAIN_BASE) == RegionKind.MAIN

    def test_main_only(self):
        memmap = MemoryMap.main_only()
        assert memmap.spm_region is None
        assert memmap.region_at(100) is None

    def test_unmapped_raises(self):
        memmap = MemoryMap.with_spm(64)
        with pytest.raises(ValueError):
            memmap.kind_at(0x8000)

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            MemoryMap([
                Region("a", 0, 100, RegionKind.SPM),
                Region("b", 50, 100, RegionKind.MAIN),
            ])

    def test_region_helpers(self):
        region = Region("x", 0x100, 0x10, RegionKind.MAIN)
        assert region.end == 0x110
        assert region.contains(0x100) and region.contains(0x10F)
        assert not region.contains(0x110)


class TestTable1:
    def test_paper_values(self):
        timing = AccessTiming.table1()
        assert timing.cycles(RegionKind.MAIN, 1) == 2
        assert timing.cycles(RegionKind.MAIN, 2) == 2
        assert timing.cycles(RegionKind.MAIN, 4) == 4
        for width in (1, 2, 4):
            assert timing.cycles(RegionKind.SPM, width) == 1

    def test_line_fill_is_12_extra_waitstates(self):
        timing = AccessTiming.table1()
        # 4 word transfers x 4 cycles = 16 = 4 access cycles + 12 waits.
        assert timing.line_fill_cycles(16) == 16

    def test_bad_width(self):
        with pytest.raises(ValueError):
            AccessTiming.table1().cycles(RegionKind.MAIN, 3)
        with pytest.raises(ValueError):
            AccessTiming.table1().line_fill_cycles(10)


class TestSystemConfig:
    def test_exclusive_spm_or_cache(self):
        with pytest.raises(ValueError):
            SystemConfig(name="x", spm_size=64,
                         cache=CacheConfig(size=64))

    def test_factories(self):
        assert SystemConfig.scratchpad(64).spm_size == 64
        assert SystemConfig.cached(CacheConfig(size=64)).cache is not None
        assert SystemConfig.uncached().spm_size == 0

    def test_describe(self):
        assert "scratchpad" in SystemConfig.scratchpad(64).describe()
        assert "main memory only" in SystemConfig.uncached().describe()


class TestHierarchyCycles:
    def test_spm_fetch_vs_main_fetch(self):
        hier = MemoryHierarchy(SystemConfig.scratchpad(256))
        assert hier.fetch_cycles(0) == 1
        assert hier.fetch_cycles(MAIN_BASE) == 2

    def test_spm_data_widths(self):
        hier = MemoryHierarchy(SystemConfig.scratchpad(256))
        assert hier.read_cycles(0, 4) == 1
        assert hier.read_cycles(MAIN_BASE, 4) == 4
        assert hier.read_cycles(MAIN_BASE, 2) == 2
        assert hier.write_cycles(0, 2) == 1
        assert hier.write_cycles(MAIN_BASE, 1) == 2

    def test_cache_fetch_miss_then_hit(self):
        hier = MemoryHierarchy(SystemConfig.cached(CacheConfig(size=64)))
        assert hier.fetch_cycles(MAIN_BASE) == 16      # line fill
        assert hier.fetch_cycles(MAIN_BASE + 2) == 1   # same line

    def test_cache_write_through_cost(self):
        hier = MemoryHierarchy(SystemConfig.cached(CacheConfig(size=64)))
        assert hier.write_cycles(MAIN_BASE, 4) == 4
        assert hier.write_cycles(MAIN_BASE, 2) == 2

    def test_icache_data_bypass(self):
        config = SystemConfig.cached(CacheConfig(size=64, unified=False))
        hier = MemoryHierarchy(config)
        assert hier.read_cycles(MAIN_BASE, 4) == 4     # straight to main
        assert hier.read_cycles(MAIN_BASE, 4) == 4     # never cached
        assert hier.fetch_cycles(MAIN_BASE) == 16      # fetches cached
        assert hier.fetch_cycles(MAIN_BASE) == 1

    def test_unified_read_allocates(self):
        hier = MemoryHierarchy(SystemConfig.cached(CacheConfig(size=64)))
        assert hier.read_cycles(MAIN_BASE, 4) == 16
        assert hier.read_cycles(MAIN_BASE + 12, 4) == 1

    def test_reset_clears_cache(self):
        hier = MemoryHierarchy(SystemConfig.cached(CacheConfig(size=64)))
        hier.fetch_cycles(MAIN_BASE)
        hier.reset()
        assert hier.fetch_cycles(MAIN_BASE) == 16

    def test_stack_top_inside_main(self):
        memmap = MemoryMap.main_only()
        assert memmap.kind_at(STACK_TOP - 4) == RegionKind.MAIN
