"""Cache model: geometry, replacement policies, write policy, stats."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.memory import Cache, CacheConfig, ReplacementPolicy


class TestConfig:
    def test_geometry(self):
        config = CacheConfig(size=256, line_size=16, assoc=1)
        assert config.num_sets == 16
        assert config.set_index(0) == 0
        assert config.set_index(16) == 1
        assert config.set_index(256) == 0  # wraps

    def test_block_of(self):
        config = CacheConfig(size=64)
        assert config.block_of(0) == 0
        assert config.block_of(15) == 0
        assert config.block_of(16) == 1

    def test_blocks_in_range(self):
        config = CacheConfig(size=64)
        assert list(config.blocks_in_range(0, 16)) == [0]
        assert list(config.blocks_in_range(0, 17)) == [0, 1]
        assert list(config.blocks_in_range(15, 17)) == [0, 1]
        assert list(config.blocks_in_range(8, 8)) == []

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            CacheConfig(size=100)       # not divisible into lines
        with pytest.raises(ValueError):
            CacheConfig(size=0)
        with pytest.raises(ValueError):
            CacheConfig(size=64, line_size=12)  # not a power of two

    def test_describe(self):
        assert "direct mapped" in CacheConfig(size=64).describe()
        assert "2-way" in CacheConfig(size=64, assoc=2).describe()
        assert "instruction" in CacheConfig(size=64,
                                            unified=False).describe()


class TestDirectMapped:
    def test_miss_then_hit(self):
        cache = Cache(CacheConfig(size=64))
        assert not cache.read(0)
        assert cache.read(0)
        assert cache.read(4)            # same line
        assert cache.stats.read_hits == 2
        assert cache.stats.read_misses == 1

    def test_conflict_eviction(self):
        cache = Cache(CacheConfig(size=64))  # 4 sets
        assert not cache.read(0)
        assert not cache.read(64)        # same set, evicts block 0
        assert not cache.read(0)         # miss again

    def test_fetch_counters_separate(self):
        cache = Cache(CacheConfig(size=64))
        cache.fetch(0)
        cache.fetch(0)
        assert cache.stats.fetch_misses == 1
        assert cache.stats.fetch_hits == 1
        assert cache.stats.read_hits == 0

    def test_write_through_no_allocate(self):
        cache = Cache(CacheConfig(size=64))
        assert not cache.write(0)        # write miss
        assert not cache.contains(0)     # ...does not allocate
        cache.read(0)
        assert cache.write(0)            # write hit
        assert cache.contains(0)         # ...line stays resident

    def test_reset(self):
        cache = Cache(CacheConfig(size=64))
        cache.read(0)
        cache.reset()
        assert not cache.contains(0)
        assert cache.stats.misses == 0


class TestSetAssociative:
    def test_two_way_no_conflict(self):
        cache = Cache(CacheConfig(size=128, assoc=2))  # 4 sets, 2 ways
        cache.read(0)
        cache.read(64)                  # same set, second way
        assert cache.contains(0) and cache.contains(64)

    def test_lru_eviction_order(self):
        cache = Cache(CacheConfig(size=128, assoc=2))
        cache.read(0)
        cache.read(64)
        cache.read(0)                   # refresh block 0
        cache.read(128)                 # evicts 64 (LRU), not 0
        assert cache.contains(0)
        assert not cache.contains(64)
        assert cache.contains(128)

    def test_fifo_ignores_refresh(self):
        cache = Cache(CacheConfig(size=128, assoc=2,
                                  replacement=ReplacementPolicy.FIFO))
        cache.read(0)
        cache.read(64)
        cache.read(0)                   # refresh is a no-op for FIFO
        cache.read(128)                 # evicts oldest inserted = 0
        assert not cache.contains(0)
        assert cache.contains(64)

    def test_random_is_deterministic(self):
        def run():
            cache = Cache(CacheConfig(
                size=128, assoc=2,
                replacement=ReplacementPolicy.RANDOM))
            trace = []
            for addr in (0, 64, 128, 192, 0, 64, 128):
                trace.append(cache.read(addr))
            return trace
        assert run() == run()


# -- reference-model cross-check ------------------------------------------------

class _ReferenceLRU:
    """Straightforward LRU model used as an oracle."""

    def __init__(self, num_sets, assoc, line_size):
        self.num_sets = num_sets
        self.assoc = assoc
        self.line_size = line_size
        self.sets = [[] for _ in range(num_sets)]

    def access(self, addr, write=False):
        block = addr // self.line_size
        ways = self.sets[block % self.num_sets]
        hit = block in ways
        if hit:
            ways.remove(block)
            ways.insert(0, block)
        elif not write:
            ways.insert(0, block)
            del ways[self.assoc:]
        return hit


@settings(max_examples=200, deadline=None)
@given(
    assoc=st.sampled_from([1, 2, 4]),
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(0, 255)), max_size=120),
)
def test_cache_matches_reference_lru(assoc, ops):
    config = CacheConfig(size=64 * assoc, assoc=assoc)
    cache = Cache(config)
    reference = _ReferenceLRU(config.num_sets, assoc, config.line_size)
    for is_write, addr4 in ops:
        addr = addr4 * 4
        if is_write:
            assert cache.write(addr) == reference.access(addr, write=True)
        else:
            assert cache.read(addr) == reference.access(addr)


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(0, 1023), max_size=200))
def test_contents_subset_of_accessed(addrs):
    cache = Cache(CacheConfig(size=128))
    accessed_blocks = set()
    for addr in addrs:
        cache.read(addr)
        accessed_blocks.add(cache.config.block_of(addr))
    for ways in cache.sets:
        assert set(ways) <= accessed_blocks
        assert len(ways) <= cache.config.assoc
